package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/conform"
	"p2pdrm/internal/core"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/keys"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/svc"
	"p2pdrm/internal/wire"
	"p2pdrm/internal/workload"
)

// TimeShiftConfig parameterizes the time-shifted-viewing scenario: a
// pay-per-view event whose viewers first watch live, then seek back into
// the root's retained history — uniformly over the whole past, then
// Zipf-skewed toward recent frames. A quarter of the audience bought a
// package that lapses mid-event, exercising the grant-window ticket cap
// end to end. Every decrypt, join, rekey, and refusal feeds the
// rights-conformance oracle (internal/conform), which must report zero
// false grants and zero false denials; key availability vs seek depth is
// the scenario's figure — frames older than the ring window fetch fine
// but no longer decrypt (§IV-E forward secrecy working at the viewer).
type TimeShiftConfig struct {
	Seed int64
	// Viewers is the audience size. Default 16.
	Viewers int
	// LapsedShare of viewers hold a purchase ending at LapseAfter instead
	// of covering the whole event. Default 0.25.
	LapsedShare float64
	// LivePhase / SeekPhase are the phase lengths: live viewing, then
	// uniform seeks, then Zipf seeks. Defaults 3m / 3m.
	LivePhase time.Duration
	SeekPhase time.Duration
	// LapseAfter ends the lapsed viewers' purchase window. Default
	// LivePhase + SeekPhase/2 (mid seek-uniform).
	LapseAfter time.Duration
	// RekeyInterval rotates content keys. Default 30s (short, so seeks
	// cross many key iterations).
	RekeyInterval time.Duration
	// HistoryFrames is the root's retained-frame window. Default 600.
	HistoryFrames int
	// SeekEvery paces each viewer's seek loop. Default 15s.
	SeekEvery time.Duration

	// FaultPartition severs PartitionShare of viewers from the root for
	// PartitionFor, starting at the seek-uniform boundary: their seeks
	// and live feed fail until the heal and must recover. Defaults 0.25
	// and 20s.
	FaultPartition bool
	PartitionShare float64
	PartitionFor   time.Duration
}

func (c *TimeShiftConfig) fill() {
	if c.Viewers <= 0 {
		c.Viewers = 16
	}
	if c.LapsedShare <= 0 {
		c.LapsedShare = 0.25
	}
	if c.LivePhase <= 0 {
		c.LivePhase = 3 * time.Minute
	}
	if c.SeekPhase <= 0 {
		c.SeekPhase = 3 * time.Minute
	}
	if c.LapseAfter <= 0 {
		c.LapseAfter = c.LivePhase + c.SeekPhase/2
	}
	if c.RekeyInterval <= 0 {
		c.RekeyInterval = 30 * time.Second
	}
	if c.HistoryFrames <= 0 {
		c.HistoryFrames = 600
	}
	if c.SeekEvery <= 0 {
		c.SeekEvery = 15 * time.Second
	}
	if c.PartitionShare == 0 {
		c.PartitionShare = 0.25
	}
	if c.PartitionFor <= 0 {
		c.PartitionFor = 20 * time.Second
	}
}

// SeekDepthBucket aggregates seek outcomes at one depth, measured in
// rekey intervals behind the viewer's playhead: within the ring window
// frames open, beyond it the viewer's own ring refuses the serial.
type SeekDepthBucket struct {
	Intervals int // depth in rekey intervals (0 = current interval)
	Frames    int // sealed frames fetched at this depth
	Opened    int // frames that decrypted
	KeyMiss   int // frames refused by the viewer's ring (evicted serial)
}

// TimeShiftResult reports the scenario outcome.
type TimeShiftResult struct {
	Viewers int
	Lapsed  int
	Frames  int64 // live frames delivered across the audience

	SeekCalls   int64
	SeekFrames  int64
	SeekErrors  int64            // transport failures (partition chaos)
	SeekRejects map[string]int64 // typed refusals by wire code name

	// PostLapseDenies counts lapsed viewers' re-watch probes refused with
	// the typed policy denial after their purchase window closed.
	PostLapseDenies int
	Partitioned     int

	Buckets []SeekDepthBucket
	Ring    keys.RingStats // aggregated over all viewers' rings
	Conform *conform.Report

	Net       simnet.NetStats
	Phases    []Phase
	Endpoints map[string]svc.Metrics
	Calls     map[string]svc.CallStats
	Trace     *obs.Trace
	Series    *obs.Series
}

// Fingerprint digests every counter into one line; two runs with the
// same seed must match byte-for-byte.
func (r *TimeShiftResult) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v=%d lapsed=%d frames=%d seeks=%d sframes=%d serr=%d deny=%d part=%d",
		r.Viewers, r.Lapsed, r.Frames, r.SeekCalls, r.SeekFrames, r.SeekErrors,
		r.PostLapseDenies, r.Partitioned)
	for _, code := range sortedKeys(r.SeekRejects) {
		fmt.Fprintf(&b, " rej.%s=%d", code, r.SeekRejects[code])
	}
	for _, bk := range r.Buckets {
		fmt.Fprintf(&b, " d%d=%d/%d/%d", bk.Intervals, bk.Frames, bk.Opened, bk.KeyMiss)
	}
	fmt.Fprintf(&b, " ring=%d/%d/%d/%d", r.Ring.Lookups, r.Ring.Misses,
		r.Ring.MissesEvicted, r.Ring.MissesInWindow)
	fmt.Fprintf(&b, " conform[%s]", r.Conform.Summary())
	fmt.Fprintf(&b, " sent=%d drop=%d", r.Net.Sent, r.Net.Dropped)
	for _, name := range sortedCallNames(r.Calls) {
		s := r.Calls[name]
		fmt.Fprintf(&b, " %s=%d/%d/%d/%d", name, s.Attempts, s.Retries, s.Failures, s.Overloads)
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunTimeShift runs the time-shifted viewing scenario.
func RunTimeShift(cfg TimeShiftConfig) (*TimeShiftResult, error) {
	cfg.fill()
	// Grace must cover the overlay's eviction slack: a lapsed child keeps
	// receiving until expiry + p2p ExpiryGrace (10s default) + one
	// delivery round, and only then is severed (§IV-D).
	oracle := conform.New(conform.Config{Grace: 12 * time.Second, MaxViolations: 64})
	var sys *core.System
	sys, err := core.NewSystem(core.Options{
		Seed:            cfg.Seed,
		Partitions:      []string{"live"},
		RekeyInterval:   cfg.RekeyInterval,
		PacketInterval:  time.Second,
		RootRegion:      100,
		RootMaxChildren: 2 * cfg.Viewers, // every viewer can sit at the root
		HistoryWindow:   cfg.HistoryFrames,
		OnRekey: func(_ string, serial keys.Serial) {
			oracle.RecordRekey(serial, sys.Sched.Now())
		},
	})
	if err != nil {
		return nil, err
	}
	start := sys.Sched.Now()
	lapseEnd := start.Add(cfg.LapseAfter)
	deadline := start.Add(cfg.LivePhase + 2*cfg.SeekPhase)
	eventEnd := deadline.Add(10 * time.Minute)

	if err := sys.DeployChannel(core.PPVChannel("ppv", "PPV Event", "evt", start, eventEnd, "100")); err != nil {
		return nil, err
	}
	rootAddr := sys.Servers["ppv"].Addr()

	lapsed := int(float64(cfg.Viewers) * cfg.LapsedShare)
	names := make([]string, cfg.Viewers)
	for i := 0; i < cfg.Viewers; i++ {
		names[i] = fmt.Sprintf("ts%03d@e", i)
		if _, err := sys.RegisterUser(names[i], "pw"); err != nil {
			return nil, err
		}
		end := eventEnd
		if i < lapsed {
			end = lapseEnd
		}
		if err := sys.PurchasePPV(names[i], "evt", start, end); err != nil {
			return nil, err
		}
		oracle.AddRight(names[i], start, end)
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	offsets := workload.FlashCrowd(rng, cfg.Viewers, 30*time.Second)
	addrs := make([]simnet.Addr, cfg.Viewers)
	for i := range addrs {
		addrs[i] = geo.Addr(100, 1+i%40, i+1)
	}

	// Chaos knob: sever a viewer subset from the root across the
	// live→seek boundary. Their live feed stalls and their seeks fail at
	// the transport until the heal; session recovery must carry them.
	var partitioned []int
	if cfg.FaultPartition {
		partitioned = workload.PickSubset(rng, cfg.Viewers, int(float64(cfg.Viewers)*cfg.PartitionShare))
		var partAddrs []simnet.Addr
		for _, i := range partitioned {
			partAddrs = append(partAddrs, addrs[i])
		}
		sys.Net.SchedulePartition(partAddrs, []simnet.Addr{rootAddr}, start.Add(cfg.LivePhase), cfg.PartitionFor)
	}

	trace := obs.NewTrace(8192)
	bounds := []PhaseBoundary{
		{Name: "live", At: start},
		{Name: "seek-uniform", At: start.Add(cfg.LivePhase)},
		{Name: "seek-zipf", At: start.Add(cfg.LivePhase + cfg.SeekPhase)},
	}
	phases := RecordPhases(sys, bounds)
	sampler := NewSystemSampler(sys, 5*time.Second)
	sampler.Run(sys.Sched, deadline)

	var mu sync.Mutex
	var frames int64
	lastSeq := make([]uint64, cfg.Viewers)
	res := &TimeShiftResult{
		Viewers:     cfg.Viewers,
		Lapsed:      lapsed,
		Partitioned: len(partitioned),
		SeekRejects: make(map[string]int64),
		Calls:       make(map[string]svc.CallStats),
	}
	buckets := make(map[int]*SeekDepthBucket)

	totalFrames := uint64(deadline.Sub(start) / time.Second)
	clients := make([]*client.Client, cfg.Viewers)
	for i := 0; i < cfg.Viewers; i++ {
		i := i
		name := names[i]
		c, err := sys.NewClient(name, "pw", addrs[i], func(cc *client.Config) {
			cc.Trace = trace
			cc.OnFrame = func(seq uint64, _ []byte) {
				mu.Lock()
				frames++
				if seq > lastSeq[i] {
					lastSeq[i] = seq
				}
				mu.Unlock()
			}
			cc.OnDecrypt = func(serial keys.Serial, seq uint64, err error) {
				oracle.RecordDecrypt(name, serial, seq, sys.Sched.Now(), err == nil)
			}
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c

		// Session loop: arrive, log in, watch; exit on a typed policy
		// denial (rights gone — expected for lapsed viewers).
		sys.Sched.Go(func() {
			sys.Sched.Sleep(offsets[i])
			backoff := 2 * time.Second
			for {
				err := c.Login()
				if err == nil {
					err = c.Watch("ppv")
				}
				if err == nil {
					mu.Lock()
					exp := time.Time{}
					if ct := c.ChannelTicket(); ct != nil {
						exp = ct.Expiry
					}
					mu.Unlock()
					oracle.RecordAdmit(name, sys.Sched.Now(), exp)
					return
				}
				var serr *wire.ServiceError
				if errors.As(err, &serr) && serr.Code == wire.CodeDenied {
					oracle.RecordDeny(name, sys.Sched.Now(), serr.Code)
					return
				}
				if !sys.Sched.Now().Before(deadline) {
					return
				}
				sys.Sched.Sleep(backoff + time.Duration(sys.Sched.Float64()*float64(time.Second)))
				if backoff *= 2; backoff > 15*time.Second {
					backoff = 15 * time.Second
				}
			}
		})

		// Seek loop: from the uniform boundary on, fetch history from the
		// root — uniform targets over the whole past first, then
		// Zipf-skewed depths. A viewer whose ticket lapsed keeps probing
		// and collects typed expired-ticket refusals instead of frames.
		sys.Sched.Go(func() {
			srng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(i)))
			zipf := rand.NewZipf(srng, 1.3, 8, totalFrames)
			sys.Sched.Sleep(cfg.LivePhase + time.Duration(i)*time.Second)
			zipfAt := start.Add(cfg.LivePhase + cfg.SeekPhase)
			for sys.Sched.Now().Before(deadline) {
				mu.Lock()
				head := lastSeq[i]
				mu.Unlock()
				if head > 0 {
					var target uint64
					if sys.Sched.Now().Before(zipfAt) {
						target = uint64(srng.Int63n(int64(head + 1)))
					} else {
						depth := zipf.Uint64()
						if depth > head {
							depth = head
						}
						target = head - depth
					}
					runSeek(sys, oracle, res, buckets, &mu, c, cfg, name, rootAddr, head, target)
				}
				sys.Sched.Sleep(cfg.SeekEvery + time.Duration(srng.Int63n(int64(5*time.Second))))
			}
		})
	}

	// Post-lapse probes: lapsed viewers try a fresh watch after their
	// purchase window closed — every probe must come back with the typed
	// policy denial, never a ticket.
	for i := 0; i < lapsed; i++ {
		i := i
		name := names[i]
		sys.Sched.At(lapseEnd.Add(45*time.Second), func() {
			sys.Sched.Go(func() {
				err := clients[i].Watch("ppv")
				var serr *wire.ServiceError
				if errors.As(err, &serr) {
					oracle.RecordDeny(name, sys.Sched.Now(), serr.Code)
					if serr.Code == wire.CodeDenied {
						mu.Lock()
						res.PostLapseDenies++
						mu.Unlock()
					}
				}
			})
		})
	}

	sys.Sched.RunUntil(deadline.Add(30 * time.Second))
	sys.StopAll()

	mu.Lock()
	res.Frames = frames
	mu.Unlock()
	for _, c := range clients {
		if p := c.Peer(); p != nil {
			rs := p.Ring().Stats()
			res.Ring.Lookups += rs.Lookups
			res.Ring.Misses += rs.Misses
			res.Ring.MissesEvicted += rs.MissesEvicted
			res.Ring.MissesInWindow += rs.MissesInWindow
			if rs.DeepestMiss > res.Ring.DeepestMiss {
				res.Ring.DeepestMiss = rs.DeepestMiss
			}
		}
		for name, cs := range c.Policy().Stats() {
			t := res.Calls[name]
			t.Merge(cs)
			res.Calls[name] = t
		}
	}
	for d, bk := range buckets {
		_ = d
		res.Buckets = append(res.Buckets, *bk)
	}
	sort.Slice(res.Buckets, func(i, j int) bool { return res.Buckets[i].Intervals < res.Buckets[j].Intervals })
	res.Conform = oracle.Finish()
	res.Net = sys.Net.Stats()
	res.Phases = phases.Finish()
	res.Endpoints = sys.EndpointTotals()
	res.Trace = trace
	res.Series = sampler.Series()
	return res, nil
}

// runSeek performs one seek call against the root and scores each
// returned frame with the viewer's own ring.
func runSeek(sys *core.System, oracle *conform.Oracle, res *TimeShiftResult,
	buckets map[int]*SeekDepthBucket, mu *sync.Mutex, c *client.Client,
	cfg TimeShiftConfig, name string, root simnet.Addr, head, target uint64) {
	mu.Lock()
	res.SeekCalls++
	mu.Unlock()
	peer := c.Peer()
	var (
		sframes []wire.HistoryFrame
		err     error
	)
	if peer != nil {
		_, sframes, err = peer.SeekHistory(root, target, 48, 10*time.Second)
	} else {
		// The viewer's overlay peer is gone (lapsed and evicted): probe
		// with the stale ticket directly and collect the typed refusal.
		_, sframes, err = rawSeek(sys, c, root, target)
	}
	if err != nil {
		var serr *wire.ServiceError
		if errors.As(err, &serr) {
			oracle.RecordDeny(name, sys.Sched.Now(), serr.Code)
			mu.Lock()
			res.SeekRejects[serr.Code.String()]++
			mu.Unlock()
		} else {
			mu.Lock()
			res.SeekErrors++
			mu.Unlock()
		}
		return
	}
	now := sys.Sched.Now()
	for _, f := range sframes {
		var serial keys.Serial
		ok := f.Clear
		if !f.Clear && len(f.Packet) > 0 {
			serial = keys.Serial(f.Packet[0])
			_, oerr := c.DecryptHistoryFrame(f)
			ok = oerr == nil
		}
		oracle.RecordSeekDecrypt(name, serial, f.Seq, now, ok)
		depth := 0
		if head > f.Seq {
			depth = int(time.Duration(head-f.Seq) * time.Second / cfg.RekeyInterval)
		}
		mu.Lock()
		res.SeekFrames++
		bk := buckets[depth]
		if bk == nil {
			bk = &SeekDepthBucket{Intervals: depth}
			buckets[depth] = bk
		}
		bk.Frames++
		if ok {
			bk.Opened++
		} else {
			bk.KeyMiss++
		}
		mu.Unlock()
	}
}

// rawSeek sends a SeekReq with the client's (possibly expired) ticket
// from its own node, outside the peer lifecycle.
func rawSeek(sys *core.System, c *client.Client, root simnet.Addr, target uint64) (*wire.SeekResp, []wire.HistoryFrame, error) {
	blob := c.ChannelTicketBlob()
	if len(blob) == 0 {
		return nil, nil, fmt.Errorf("exp: no ticket to seek with")
	}
	req := &wire.SeekReq{ChannelTicket: blob, FromSeq: target, MaxFrames: 48}
	t := svc.Plain{Node: c.Node(), Timeout: 10 * time.Second}
	resp, err := svc.Invoke(t, root, wire.SvcSeek, req, wire.DecodeSeekResp)
	if err != nil {
		return nil, nil, err
	}
	if !resp.Accept {
		return resp, nil, &wire.ServiceError{Code: resp.Code, Msg: resp.Reason}
	}
	frames := make([]wire.HistoryFrame, 0, len(resp.Frames))
	for _, b := range resp.Frames {
		if f, err := wire.DecodeHistoryFrame(b); err == nil {
			frames = append(frames, *f)
		}
	}
	return resp, frames, nil
}

// RenderTimeShift prints the scenario: seek-depth availability table,
// the conformance verdict, and the typed refusal counts.
func RenderTimeShift(res *TimeShiftResult) string {
	var b strings.Builder
	b.WriteString("Time-shifted viewing — rights conformance and key availability vs seek depth\n")
	fmt.Fprintf(&b, "  viewers %d (%d lapse mid-event) — %d live frames, %d seeks fetched %d frames\n",
		res.Viewers, res.Lapsed, res.Frames, res.SeekCalls, res.SeekFrames)
	if res.Partitioned > 0 {
		fmt.Fprintf(&b, "  chaos: %d viewers partitioned from the root at the seek boundary (%d transport errors)\n",
			res.Partitioned, res.SeekErrors)
	}
	fmt.Fprintf(&b, "  %-28s %8s %8s %8s %9s\n", "seek depth (rekey intervals)", "frames", "opened", "keymiss", "avail")
	for _, bk := range res.Buckets {
		avail := 0.0
		if bk.Frames > 0 {
			avail = float64(bk.Opened) / float64(bk.Frames)
		}
		fmt.Fprintf(&b, "  %-28d %8d %8d %8d %8.0f%%\n", bk.Intervals, bk.Frames, bk.Opened, bk.KeyMiss, 100*avail)
	}
	for _, code := range sortedKeys(res.SeekRejects) {
		fmt.Fprintf(&b, "  seek refusals: %s ×%d\n", code, res.SeekRejects[code])
	}
	fmt.Fprintf(&b, "  post-lapse re-watch probes denied: %d\n", res.PostLapseDenies)
	cr := res.Conform
	fmt.Fprintf(&b, "  conformance: %d decrypts (%d ok) — false grants %d, false denials %d, window breaches %d, ticket overruns %d\n",
		cr.Decrypts, cr.DecryptOK, cr.FalseGrants, cr.FalseDenials, cr.WindowBreaches, cr.TicketOverruns)
	fmt.Fprintf(&b, "               grace grants %d, window denials %d, settle %d (innocent)\n",
		cr.GraceGrants, cr.WindowDenials, cr.SettleDenials+cr.RekeyRaceDenials)
	if !cr.Clean() {
		b.WriteString("  CONFORMANCE VIOLATIONS:\n")
		for _, v := range cr.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	fmt.Fprintf(&b, "  ring: %d lookups, %d misses (%d evicted / %d in-window), deepest miss %d\n",
		res.Ring.Lookups, res.Ring.Misses, res.Ring.MissesEvicted, res.Ring.MissesInWindow, res.Ring.DeepestMiss)
	fmt.Fprintf(&b, "  network: %d messages sent, %d dropped\n", res.Net.Sent, res.Net.Dropped)
	if len(res.Phases) > 0 {
		b.WriteString(RenderPhases(res.Phases))
	}
	b.WriteString("(frames deeper than the key-ring window fetch fine but no longer decrypt —\n")
	b.WriteString(" forward secrecy bounds time-shifting at the viewer, not at the server)\n")
	return b.String()
}
