package exp

import (
	"fmt"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/core"
	"p2pdrm/internal/feedback"
	"p2pdrm/internal/geo"
)

// ZapConfig scales the channel-switching (zapping) latency study. §II's
// Viewing Experience requirement: "the channel switching delay should be
// minimal, similar to TV services provided by satellite (around 3
// seconds)". Zap time here is the full user-visible pipeline: SWITCH1 +
// SWITCH2 (ticket + peers), JOIN (session + content keys), and the wait
// for the first decrypted frame of the new channel.
type ZapConfig struct {
	Seed     int64
	Viewers  int
	Channels int
	// Zaps per viewer measured after warm-up.
	Zaps int
	// PacketInterval paces content; a zap cannot beat the gap to the
	// next produced frame, exactly like waiting for the next keyframe in
	// a real encoder. Default 500ms.
	PacketInterval time.Duration
}

func (c *ZapConfig) fill() {
	if c.Viewers <= 0 {
		c.Viewers = 20
	}
	if c.Channels <= 0 {
		c.Channels = 4
	}
	if c.Zaps <= 0 {
		c.Zaps = 5
	}
	if c.PacketInterval <= 0 {
		c.PacketInterval = 500 * time.Millisecond
	}
}

// ZapResult summarizes zap-time statistics.
type ZapResult struct {
	Samples int
	Median  time.Duration
	P95     time.Duration
	Max     time.Duration
}

// RunZap measures switch-to-first-frame latency across a pool of viewers
// zapping between live channels.
func RunZap(cfg ZapConfig) (*ZapResult, error) {
	cfg.fill()
	sys, err := core.NewSystem(core.Options{
		Seed:           cfg.Seed,
		PacketInterval: cfg.PacketInterval,
		RootRegion:     100,
	})
	if err != nil {
		return nil, err
	}
	channelIDs := make([]string, cfg.Channels)
	for i := range channelIDs {
		id := fmt.Sprintf("zap%02d", i)
		channelIDs[i] = id
		if err := sys.DeployChannel(core.FreeToView(id, "Zap "+id, "100")); err != nil {
			return nil, err
		}
	}

	var mu sync.Mutex
	var zaps []time.Duration
	for i := 0; i < cfg.Viewers; i++ {
		i := i
		email := fmt.Sprintf("zap%04d@e", i)
		if _, err := sys.RegisterUser(email, "pw"); err != nil {
			return nil, err
		}
		var frameCh func()
		c, err := sys.NewClient(email, "pw", geo.Addr(100, 1+i%40, i+1), func(cc *client.Config) {
			cc.OnFrame = func(uint64, []byte) {
				mu.Lock()
				f := frameCh
				mu.Unlock()
				if f != nil {
					f()
				}
			}
		})
		if err != nil {
			return nil, err
		}
		sys.Sched.Go(func() {
			sys.Sched.Sleep(time.Duration(i) * time.Second)
			if err := c.Login(); err != nil {
				return
			}
			for z := 0; z <= cfg.Zaps; z++ {
				target := channelIDs[(i+z)%len(channelIDs)]
				w := sys.Sched.NewWaiter()
				mu.Lock()
				frameCh = func() { w.Deliver(nil) }
				mu.Unlock()
				start := sys.Sched.Now()
				if err := c.Watch(target); err != nil {
					continue
				}
				if _, err := w.Wait(30 * time.Second); err == nil && z > 0 {
					// z == 0 is the initial tune-in, not a zap.
					mu.Lock()
					zaps = append(zaps, sys.Sched.Now().Sub(start))
					mu.Unlock()
				}
				sys.Sched.Sleep(20 * time.Second)
			}
			c.StopWatching()
		})
	}
	warm := time.Duration(cfg.Viewers) * time.Second
	total := warm + time.Duration(cfg.Zaps+2)*25*time.Second
	sys.Sched.RunUntil(sys.Sched.Now().Add(total))
	sys.StopAll()

	mu.Lock()
	defer mu.Unlock()
	return &ZapResult{
		Samples: len(zaps),
		Median:  feedback.Median(zaps),
		P95:     feedback.Quantile(zaps, 0.95),
		Max:     feedback.Quantile(zaps, 1.0),
	}, nil
}

// RenderZap prints the zap study against the §II requirement.
func RenderZap(r *ZapResult) string {
	return fmt.Sprintf(
		"Channel-switch (zap) latency — switch protocol + join + first frame\n"+
			"  samples: %d\n"+
			"  median:  %v\n"+
			"  p95:     %v\n"+
			"  max:     %v\n"+
			"(§II requirement: similar to satellite TV, around 3 seconds)\n",
		r.Samples, r.Median.Round(time.Millisecond),
		r.P95.Round(time.Millisecond), r.Max.Round(time.Millisecond))
}
