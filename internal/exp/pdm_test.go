package exp

import (
	"testing"
	"time"
)

// TestPDMAblation compares single-parent distribution against
// receiver-based peer-division multiplexing (2 parents) under the same
// churn event. Empirically the two fail differently: a single-parent
// viewer goes fully silent and re-parents immediately (OnParentLoss),
// while a PDM viewer keeps half its sub-streams and relies on the
// slower per-substream stall watchdog for the other half — PDM's real
// win is splitting upstream bandwidth, not churn recovery. The ablation
// asserts both configurations recover and logs the comparison.
func TestPDMAblation(t *testing.T) {
	run := func(parents int) *ChurnResult {
		res, err := RunChurn(ChurnConfig{
			Seed:            9,
			Viewers:         40,
			ChurnFraction:   0.3,
			Phase:           2 * time.Minute,
			RootMaxChildren: 4,
			Parents:         parents,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(1)
	pdm := run(2)
	if single.Before < 0.4 || pdm.Before < 0.4 {
		t.Fatalf("unhealthy baselines: %.2f / %.2f", single.Before, pdm.Before)
	}
	// Both must recover after the churn window.
	if single.After < 0.8*single.Before || pdm.After < 0.8*pdm.Before {
		t.Fatalf("recovery failed: single %.2f→%.2f, pdm %.2f→%.2f",
			single.Before, single.After, pdm.Before, pdm.After)
	}
	t.Logf("during-churn delivery: single-parent %.2f f/s, PDM %.2f f/s", single.During, pdm.During)
}
