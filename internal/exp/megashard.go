package exp

import (
	"fmt"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/core"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/sim"
)

// megaLookahead is the sharded engines' epoch length. The virtual
// population never talks across lanes, so no causality bound applies —
// the epoch length only sets how often control-phase samplers observe
// lane counters (and the barrier overhead). It is a fixed constant
// because epoch boundaries are visible to the sampled series: changing
// it would move the sharded goldens.
const megaLookahead = 500 * time.Millisecond

// runMegaSharded is RunMegaScale on the sharded engine: the real
// overlay (system, clients, content, re-keys) runs on the control
// scheduler exactly as in the serial path, while the virtual population
// stripes over cfg.Shards worker lanes with per-viewer SplitMix64
// streams. Per-viewer behavior depends only on the viewer's own stream
// and epoch boundaries depend only on the lookahead and the global
// event population, so the fingerprint is byte-identical for any
// positive shard count.
func runMegaSharded(cfg MegaConfig) (*MegaResult, error) {
	wallStart := time.Now()
	eng := sim.NewSharded(time.Date(2008, 6, 23, 0, 0, 0, 0, time.UTC), cfg.Seed, cfg.Shards, megaLookahead)
	sys, err := core.NewSystem(core.Options{
		Scheduler:       eng.Ctrl(),
		Seed:            cfg.Seed,
		RekeyInterval:   cfg.RekeyInterval,
		PacketInterval:  cfg.PacketInterval,
		RootRegion:      100,
		RootMaxChildren: 4, // deep tree: keys relay through viewers
	})
	if err != nil {
		return nil, err
	}
	if err := sys.DeployChannel(core.FreeToView("live", "Live", "100")); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var frames int64
	clients := make([]*client.Client, cfg.RealViewers)
	for i := 0; i < cfg.RealViewers; i++ {
		email := fmt.Sprintf("mega%05d@e", i)
		if _, err := sys.RegisterUser(email, "pw"); err != nil {
			return nil, err
		}
		c, err := sys.NewClient(email, "pw", geo.Addr(100, 1+i%40, i+1), func(cc *client.Config) {
			cc.OnFrame = func(uint64, []byte) {
				mu.Lock()
				frames++
				mu.Unlock()
			}
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c
		delay := time.Duration(i) * 250 * time.Millisecond
		sys.Sched.Go(func() {
			sys.Sched.Sleep(delay)
			if err := c.Login(); err != nil {
				return
			}
			_ = c.Watch("live")
		})
	}
	start := sys.Sched.Now()
	warm := time.Duration(cfg.RealViewers)*250*time.Millisecond + 30*time.Second
	// The lanes are still empty, so the warm-up runs as a single serial
	// control span.
	eng.Run(start.Add(warm))

	pops := newShardPops(eng, cfg.Viewers, cfg.Seed, cfg.RenewEvery, cfg.EvictAfter, cfg.ChurnFrac)

	res := &MegaResult{Viewers: cfg.Viewers, RealViewers: cfg.RealViewers}
	sp := obs.NewSampler(cfg.SampleEvery)
	sp.AddSource(func(add func(string, float64)) {
		renewals, churned, evictions := popTotals(pops)
		add("mega.renewals", float64(renewals))
		add("mega.churned", float64(churned))
		add("mega.evictions", float64(evictions))
		p := eng.Pending()
		if p > res.PeakPending {
			res.PeakPending = p
		}
		add("sched.pending", float64(p))
	})
	sp.AddSource(func(add func(string, float64)) {
		st := sys.Net.Stats()
		add("net.sent", float64(st.Sent))
		add("net.delivered", float64(st.Delivered))
	})
	var sinks []obs.RowSink
	if cfg.MetricsCSV != nil {
		sinks = append(sinks, obs.NewCSVSink(cfg.MetricsCSV))
	}
	if cfg.MetricsJSONL != nil {
		sinks = append(sinks, obs.NewJSONLSink(cfg.MetricsJSONL))
	}
	if len(sinks) > 0 {
		sp.Stream(obs.MultiSink(sinks...))
	}
	end := start.Add(warm + cfg.Duration)
	sp.Run(sys.Sched, end)
	eng.Run(end)
	sys.StopAll()

	res.Renewals, res.Churned, res.Evictions = popTotals(pops)
	res.KeyMsgs = overlayKeyMsgs(sys, clients)
	mu.Lock()
	res.Frames = frames
	mu.Unlock()
	res.Rows = sp.Series().Len()
	res.Wall = time.Since(wallStart)
	if err := sp.Series().SinkErr(); err != nil {
		return nil, fmt.Errorf("megascale metrics sink: %w", err)
	}
	return res, nil
}
