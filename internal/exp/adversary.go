package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/conform"
	"p2pdrm/internal/core"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/keys"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/svc"
	"p2pdrm/internal/wire"
	"p2pdrm/internal/workload"
)

// AdversaryConfig parameterizes the adversarial DRM scenario: an honest
// audience watches a pay-per-view event while three attacks land in
// sequence — a key-leak re-key storm (the provider force-rotates the
// content key in bursts, §IV-E), a wave of free-riding joiners
// advertising zero serving capacity, and a flood of replayed expired /
// stolen / forged Channel Tickets. The rights-conformance oracle
// (internal/conform) must stay clean throughout: attacks may cost
// capacity or continuity, never rights.
type AdversaryConfig struct {
	Seed int64
	// Viewers is the honest audience size. Default 12.
	Viewers int
	// FreeRiders is the number of zero-capacity joiners arriving in the
	// freeride phase. Default 6.
	FreeRiders int
	// Attackers is the number of replay nodes in the replay phase; each
	// sends ReplayPerAttacker expired-ticket joins plus one stolen-ticket
	// and one forged-ticket join. Defaults 5 and 3.
	Attackers         int
	ReplayPerAttacker int
	// PhaseLen is the length of each phase (baseline, keyleak, freeride,
	// replay). Default 75s.
	PhaseLen time.Duration
	// StormRekeys forced rotations spaced StormEvery apart make up the
	// key-leak storm. Defaults 7 and 5s.
	StormRekeys int
	StormEvery  time.Duration
	// TicketLifetime bounds Channel Tickets; short (default 90s) so blobs
	// harvested in the baseline phase are expired by the replay phase.
	TicketLifetime time.Duration

	// FaultPartition severs PartitionShare of honest viewers from the
	// root for PartitionFor during the freeride phase: their feed must
	// re-parent through other viewers and the conformance verdict must
	// stay clean. Defaults 0.25 and 20s.
	FaultPartition bool
	PartitionShare float64
	PartitionFor   time.Duration
}

func (c *AdversaryConfig) fill() {
	if c.Viewers <= 0 {
		c.Viewers = 12
	}
	if c.FreeRiders <= 0 {
		c.FreeRiders = 6
	}
	if c.Attackers <= 0 {
		c.Attackers = 5
	}
	if c.ReplayPerAttacker <= 0 {
		c.ReplayPerAttacker = 3
	}
	if c.PhaseLen <= 0 {
		c.PhaseLen = 75 * time.Second
	}
	if c.StormRekeys <= 0 {
		c.StormRekeys = 7
	}
	if c.StormEvery <= 0 {
		c.StormEvery = 5 * time.Second
	}
	if c.TicketLifetime <= 0 {
		c.TicketLifetime = 90 * time.Second
	}
	if c.PartitionShare == 0 {
		c.PartitionShare = 0.25
	}
	if c.PartitionFor <= 0 {
		c.PartitionFor = 20 * time.Second
	}
}

// AdversaryResult reports the scenario outcome.
type AdversaryResult struct {
	Viewers    int
	FreeRiders int
	Attackers  int
	Frames     int64 // live frames delivered to the honest audience

	// Key-leak storm.
	ForcedRekeys int
	StormFails   int64 // decrypt failures inside the storm phase (races)

	// Free-riding wave: peer-side refusals and admits aggregated over
	// every serving peer, client-side typed watch failures, and how many
	// free-riders ended up watching.
	FreeRiderRefusals  int64
	FreeRiderAdmits    int64
	FreeRiderDenied    map[string]int64
	FreeRidersWatching int

	// Replay flood: every attempt must come back typed, none accepted.
	ReplayAttempts int64
	ReplayAccepted int64
	ReplayOutcomes map[string]int64 // by wire code name

	Partitioned int

	Ring    keys.RingStats
	Conform *conform.Report

	Net       simnet.NetStats
	Phases    []Phase
	Endpoints map[string]svc.Metrics
	Calls     map[string]svc.CallStats
	Trace     *obs.Trace
	Series    *obs.Series
}

// Fingerprint digests every counter into one line; two runs with the
// same seed must match byte-for-byte.
func (r *AdversaryResult) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v=%d fr=%d atk=%d frames=%d rekeys=%d stormfail=%d",
		r.Viewers, r.FreeRiders, r.Attackers, r.Frames, r.ForcedRekeys, r.StormFails)
	fmt.Fprintf(&b, " frref=%d fradm=%d frwatch=%d",
		r.FreeRiderRefusals, r.FreeRiderAdmits, r.FreeRidersWatching)
	for _, code := range sortedKeys(r.FreeRiderDenied) {
		fmt.Fprintf(&b, " frdeny.%s=%d", code, r.FreeRiderDenied[code])
	}
	fmt.Fprintf(&b, " replay=%d acc=%d", r.ReplayAttempts, r.ReplayAccepted)
	for _, code := range sortedKeys(r.ReplayOutcomes) {
		fmt.Fprintf(&b, " rep.%s=%d", code, r.ReplayOutcomes[code])
	}
	fmt.Fprintf(&b, " part=%d ring=%d/%d/%d/%d", r.Partitioned, r.Ring.Lookups,
		r.Ring.Misses, r.Ring.MissesEvicted, r.Ring.MissesInWindow)
	fmt.Fprintf(&b, " conform[%s]", r.Conform.Summary())
	fmt.Fprintf(&b, " sent=%d drop=%d", r.Net.Sent, r.Net.Dropped)
	for _, name := range sortedCallNames(r.Calls) {
		s := r.Calls[name]
		fmt.Fprintf(&b, " %s=%d/%d/%d/%d", name, s.Attempts, s.Retries, s.Failures, s.Overloads)
	}
	return b.String()
}

// RunAdversary runs the adversarial DRM scenario.
func RunAdversary(cfg AdversaryConfig) (*AdversaryResult, error) {
	cfg.fill()
	// Grace covers the overlay's eviction slack (see RunTimeShift); the
	// natural rekey interval is pushed past the run so the storm owns
	// every rotation.
	oracle := conform.New(conform.Config{Grace: 12 * time.Second, MaxViolations: 64})
	var sys *core.System
	sys, err := core.NewSystem(core.Options{
		Seed:                  cfg.Seed,
		Partitions:            []string{"live"},
		RekeyInterval:         10 * time.Minute,
		PacketInterval:        time.Second,
		RootRegion:            100,
		RootMaxChildren:       4, // a real tree: most viewers peer off other viewers
		ChannelTicketLifetime: cfg.TicketLifetime,
		OnRekey: func(_ string, serial keys.Serial) {
			oracle.RecordRekey(serial, sys.Sched.Now())
		},
	})
	if err != nil {
		return nil, err
	}
	start := sys.Sched.Now()
	phase := func(n int) time.Time { return start.Add(time.Duration(n) * cfg.PhaseLen) }
	deadline := phase(4)
	eventEnd := deadline.Add(10 * time.Minute)

	if err := sys.DeployChannel(core.PPVChannel("ppv", "PPV Event", "evt", start, eventEnd, "100")); err != nil {
		return nil, err
	}
	rootAddr := sys.Servers["ppv"].Addr()

	var mu sync.Mutex
	res := &AdversaryResult{
		Viewers:         cfg.Viewers,
		FreeRiders:      cfg.FreeRiders,
		Attackers:       cfg.Attackers,
		FreeRiderDenied: make(map[string]int64),
		ReplayOutcomes:  make(map[string]int64),
		Calls:           make(map[string]svc.CallStats),
	}

	trace := obs.NewTrace(8192)
	bounds := []PhaseBoundary{
		{Name: "baseline", At: start},
		{Name: "keyleak", At: phase(1)},
		{Name: "freeride", At: phase(2)},
		{Name: "replay", At: phase(3)},
	}
	phases := RecordPhases(sys, bounds)
	sampler := NewSystemSampler(sys, 5*time.Second)
	sampler.Run(sys.Sched, deadline)

	total := cfg.Viewers + cfg.FreeRiders
	names := make([]string, total)
	for i := 0; i < total; i++ {
		if i < cfg.Viewers {
			names[i] = fmt.Sprintf("adv%03d@e", i)
		} else {
			names[i] = fmt.Sprintf("rider%03d@e", i-cfg.Viewers)
		}
		if _, err := sys.RegisterUser(names[i], "pw"); err != nil {
			return nil, err
		}
		// Free-riders hold real rights — their attack is on capacity, not
		// entitlement; refusing them is resource policy, not DRM.
		if err := sys.PurchasePPV(names[i], "evt", start, eventEnd); err != nil {
			return nil, err
		}
		oracle.AddRight(names[i], start, eventEnd)
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	honestOffsets := workload.FlashCrowd(rng, cfg.Viewers, 20*time.Second)
	riderOffsets := workload.FlashCrowd(rng, cfg.FreeRiders, 20*time.Second)
	addrs := make([]simnet.Addr, total)
	for i := range addrs {
		addrs[i] = geo.Addr(100, 1+i%40, i+1)
	}

	// Chaos knob: sever a share of honest viewers from the root during
	// the freeride phase; their feed must re-parent through other viewers.
	var partitioned []int
	if cfg.FaultPartition {
		partitioned = workload.PickSubset(rng, cfg.Viewers, int(float64(cfg.Viewers)*cfg.PartitionShare))
		var partAddrs []simnet.Addr
		for _, i := range partitioned {
			partAddrs = append(partAddrs, addrs[i])
		}
		sys.Net.SchedulePartition(partAddrs, []simnet.Addr{rootAddr},
			phase(2).Add(35*time.Second), cfg.PartitionFor)
	}
	res.Partitioned = len(partitioned)

	stormStart, stormEnd := phase(1), phase(2)
	clients := make([]*client.Client, total)
	for i := 0; i < total; i++ {
		i := i
		name := names[i]
		rider := i >= cfg.Viewers
		c, err := sys.NewClient(name, "pw", addrs[i], func(cc *client.Config) {
			cc.Trace = trace
			if rider {
				cc.PeerCapacity = -1 // declared free-rider
			}
			cc.OnFrame = func(seq uint64, _ []byte) {
				mu.Lock()
				res.Frames++
				mu.Unlock()
			}
			cc.OnDecrypt = func(serial keys.Serial, seq uint64, err error) {
				now := sys.Sched.Now()
				oracle.RecordDecrypt(name, serial, seq, now, err == nil)
				if err != nil && !now.Before(stormStart) && now.Before(stormEnd) {
					mu.Lock()
					res.StormFails++
					mu.Unlock()
				}
			}
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c

		var arrive time.Duration
		if rider {
			arrive = cfg.PhaseLen*2 + riderOffsets[i-cfg.Viewers]
		} else {
			arrive = honestOffsets[i]
		}
		sys.Sched.Go(func() {
			sys.Sched.Sleep(arrive)
			backoff := 2 * time.Second
			for sys.Sched.Now().Before(deadline) {
				err := c.Login()
				if err == nil {
					err = c.Watch("ppv")
				}
				if err == nil {
					exp := time.Time{}
					if ct := c.ChannelTicket(); ct != nil {
						exp = ct.Expiry
					}
					oracle.RecordAdmit(name, sys.Sched.Now(), exp)
					return
				}
				var serr *wire.ServiceError
				if errors.As(err, &serr) {
					oracle.RecordDeny(name, sys.Sched.Now(), serr.Code)
					if rider {
						mu.Lock()
						res.FreeRiderDenied[serr.Code.String()]++
						mu.Unlock()
					}
					if serr.Code == wire.CodeDenied {
						return // rights refused — final
					}
				}
				sys.Sched.Sleep(backoff + time.Duration(sys.Sched.Float64()*float64(time.Second)))
				if backoff *= 2; backoff > 15*time.Second {
					backoff = 15 * time.Second
				}
			}
		})
	}

	// Key-leak storm: the provider's emergency response to a leaked
	// content key — forced rotations with no advance distribution.
	for k := 0; k < cfg.StormRekeys; k++ {
		k := k
		sys.Sched.At(phase(1).Add(3*time.Second+time.Duration(k)*cfg.StormEvery), func() {
			if _, err := sys.Servers["ppv"].ForceRekey(); err == nil {
				mu.Lock()
				res.ForcedRekeys++
				mu.Unlock()
			}
		})
	}

	// Harvest a Channel Ticket blob early; by the replay phase it is
	// expired and every replay of it must be refused with the typed code.
	var staleBlob []byte
	sys.Sched.At(start.Add(35*time.Second), func() {
		if b := clients[0].ChannelTicketBlob(); len(b) > 0 {
			staleBlob = append([]byte(nil), b...)
		}
	})

	// Replay flood: attacker nodes present expired, stolen, and forged
	// tickets straight at the root's join endpoint.
	frng := rand.New(rand.NewSource(cfg.Seed + 7))
	garbage := make([]byte, 64)
	frng.Read(garbage)
	for a := 0; a < cfg.Attackers; a++ {
		a := a
		node := sys.Net.NewNode(geo.Addr(100, 90, 500+a))
		sys.Sched.At(phase(3).Add(5*time.Second+time.Duration(a)*2*time.Second), func() {
			sys.Sched.Go(func() {
				rawJoin := func(blob []byte) {
					mu.Lock()
					res.ReplayAttempts++
					mu.Unlock()
					req := &wire.JoinReq{ChannelTicket: blob, Capacity: 4}
					t := svc.Plain{Node: node, Timeout: 10 * time.Second}
					resp, err := svc.Invoke(t, rootAddr, wire.SvcJoin, req, wire.DecodeJoinResp)
					mu.Lock()
					defer mu.Unlock()
					switch {
					case err != nil:
						res.ReplayOutcomes["transport_error"]++
					case resp.Accept:
						res.ReplayAccepted++
					default:
						res.ReplayOutcomes[resp.Code.String()]++
					}
				}
				for r := 0; r < cfg.ReplayPerAttacker; r++ {
					rawJoin(staleBlob) // expired: harvested in baseline
					sys.Sched.Sleep(3 * time.Second)
				}
				// Stolen: a live viewer's current ticket from our address.
				if b := clients[1+a%(cfg.Viewers-1)].ChannelTicketBlob(); len(b) > 0 {
					rawJoin(append([]byte(nil), b...))
				}
				rawJoin(garbage) // forged
			})
		})
	}

	sys.Sched.RunUntil(deadline.Add(30 * time.Second))
	sys.StopAll()

	// Peer-side free-rider accounting: every serving peer, root included.
	rs := sys.Servers["ppv"].Peer().Stats()
	res.FreeRiderRefusals += rs.FreeRidersRefused
	res.FreeRiderAdmits += rs.FreeRiderJoins
	for i, c := range clients {
		if p := c.Peer(); p != nil {
			ps := p.Stats()
			res.FreeRiderRefusals += ps.FreeRidersRefused
			res.FreeRiderAdmits += ps.FreeRiderJoins
			ring := p.Ring().Stats()
			res.Ring.Lookups += ring.Lookups
			res.Ring.Misses += ring.Misses
			res.Ring.MissesEvicted += ring.MissesEvicted
			res.Ring.MissesInWindow += ring.MissesInWindow
			if ring.DeepestMiss > res.Ring.DeepestMiss {
				res.Ring.DeepestMiss = ring.DeepestMiss
			}
			if i >= cfg.Viewers && c.Watching() != "" {
				res.FreeRidersWatching++
			}
		}
		for name, cs := range c.Policy().Stats() {
			t := res.Calls[name]
			t.Merge(cs)
			res.Calls[name] = t
		}
	}
	res.Conform = oracle.Finish()
	res.Net = sys.Net.Stats()
	res.Phases = phases.Finish()
	res.Endpoints = sys.EndpointTotals()
	res.Trace = trace
	res.Series = sampler.Series()
	return res, nil
}

// RenderAdversary prints the scenario: per-attack outcomes and the
// conformance verdict.
func RenderAdversary(res *AdversaryResult) string {
	var b strings.Builder
	b.WriteString("Adversarial DRM — re-key storm, free-riders, ticket replay\n")
	fmt.Fprintf(&b, "  honest viewers %d — %d live frames delivered\n", res.Viewers, res.Frames)
	if res.Partitioned > 0 {
		fmt.Fprintf(&b, "  chaos: %d viewers partitioned from the root mid-run\n", res.Partitioned)
	}
	fmt.Fprintf(&b, "  key-leak storm: %d forced rotations, %d decrypt races absorbed\n",
		res.ForcedRekeys, res.StormFails)
	fmt.Fprintf(&b, "  free-riders: %d arrived, %d joins refused (contributor reservation), %d admitted, %d watching\n",
		res.FreeRiders, res.FreeRiderRefusals, res.FreeRiderAdmits, res.FreeRidersWatching)
	for _, code := range sortedKeys(res.FreeRiderDenied) {
		fmt.Fprintf(&b, "    watch refused: %s ×%d\n", code, res.FreeRiderDenied[code])
	}
	fmt.Fprintf(&b, "  replay flood: %d joins presented, %d accepted\n", res.ReplayAttempts, res.ReplayAccepted)
	for _, code := range sortedKeys(res.ReplayOutcomes) {
		fmt.Fprintf(&b, "    refused: %s ×%d\n", code, res.ReplayOutcomes[code])
	}
	cr := res.Conform
	fmt.Fprintf(&b, "  conformance: %d decrypts (%d ok) — false grants %d, false denials %d, window breaches %d, ticket overruns %d\n",
		cr.Decrypts, cr.DecryptOK, cr.FalseGrants, cr.FalseDenials, cr.WindowBreaches, cr.TicketOverruns)
	fmt.Fprintf(&b, "               rekey races %d, settle %d, window denials %d (innocent)\n",
		cr.RekeyRaceDenials, cr.SettleDenials, cr.WindowDenials)
	if !cr.Clean() {
		b.WriteString("  CONFORMANCE VIOLATIONS:\n")
		for _, v := range cr.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	fmt.Fprintf(&b, "  ring: %d lookups, %d misses (%d evicted / %d in-window)\n",
		res.Ring.Lookups, res.Ring.Misses, res.Ring.MissesEvicted, res.Ring.MissesInWindow)
	fmt.Fprintf(&b, "  network: %d messages sent, %d dropped\n", res.Net.Sent, res.Net.Dropped)
	if len(res.Phases) > 0 {
		b.WriteString(RenderPhases(res.Phases))
	}
	b.WriteString("(attacks cost capacity and continuity, never rights: every replayed,\n")
	b.WriteString(" stolen, or forged ticket is refused with a typed code)\n")
	return b.String()
}
