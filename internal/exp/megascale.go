package exp

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/core"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/sim"
)

// MegaConfig scales the engine-capacity study: a modest tree of real
// protocol peers (full login/join/re-key/content paths) fronts a virtual
// population of up to a million viewers whose license renewals and
// eviction sentinels ride the scheduler's timer wheel. The scenario
// exists to prove the engine side of the paper's scalability claim — the
// DRM adds no central per-viewer cost, so the simulator must also sustain
// per-viewer timer load at broadcast population sizes.
type MegaConfig struct {
	Seed int64
	// Viewers is the virtual population size (default 1,000,000). Each
	// viewer holds one pending renewal timer and one pending eviction
	// sentinel at all times.
	Viewers int
	// RealViewers is the number of full-protocol clients in the overlay
	// tree (default 64).
	RealViewers int
	// Duration is the measured steady-state window (default 30 min).
	Duration time.Duration
	// RenewEvery is the per-viewer license renewal period (default 5 min).
	// Renewals are phase-jittered uniformly so load is flat, not bursty.
	RenewEvery time.Duration
	// EvictAfter is the silent-viewer eviction deadline re-armed by every
	// renewal (default 2.5 × RenewEvery). A renewal cancels the previous
	// sentinel — the dominant Timer.Stop workload at scale.
	EvictAfter time.Duration
	// ChurnFrac is the per-renewal probability that the viewer departs
	// silently; its sentinel then fires and a replacement joins with a
	// fresh phase (default 0.02).
	ChurnFrac float64
	// RekeyInterval / PacketInterval drive the real overlay (defaults
	// 1 min / 2 s).
	RekeyInterval  time.Duration
	PacketInterval time.Duration
	// SampleEvery is the metrics cadence (default 1 min).
	SampleEvery time.Duration
	// MetricsCSV / MetricsJSONL, when set, receive the metric rows as a
	// stream on the sim-clock cadence; the in-memory series then retains
	// nothing, keeping the heap bounded for arbitrarily long runs.
	MetricsCSV   io.Writer
	MetricsJSONL io.Writer
	// Parallelism bounds concurrent sweep points (0 = GOMAXPROCS).
	Parallelism int
	// Shards switches the run onto the sharded engine with that many
	// worker lanes: the real overlay stays on the control scheduler and
	// the virtual population stripes over the lanes with entity-local
	// RNG streams, so the fingerprint is identical for ANY positive
	// shard count (1, 2, 8, ...). Zero keeps the legacy serial engine —
	// a different (also pinned) fingerprint, since the serial population
	// draws from the scheduler's shared stream.
	Shards int
}

func (c *MegaConfig) fill() {
	if c.Viewers <= 0 {
		c.Viewers = 1_000_000
	}
	if c.RealViewers <= 0 {
		c.RealViewers = 64
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Minute
	}
	if c.RenewEvery <= 0 {
		c.RenewEvery = 5 * time.Minute
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2*c.RenewEvery + c.RenewEvery/2
	}
	if c.ChurnFrac <= 0 {
		c.ChurnFrac = 0.02
	}
	if c.RekeyInterval <= 0 {
		c.RekeyInterval = time.Minute
	}
	if c.PacketInterval <= 0 {
		c.PacketInterval = 2 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Minute
	}
}

// MegaResult is one population point's outcome.
type MegaResult struct {
	Viewers     int
	RealViewers int
	// Renewals / Churned / Evictions count virtual-population events in
	// the measured window.
	Renewals  int64
	Churned   int64
	Evictions int64
	// KeyMsgs / Frames come from the real overlay (whole run).
	KeyMsgs int64
	Frames  int64
	// Rows is the number of metric rows sampled (streamed or retained).
	Rows int
	// PeakPending is the largest scheduler backlog observed at a sample
	// tick — with two timers per virtual viewer it sits near 2×Viewers.
	PeakPending int
	// Wall is the host time the simulation took.
	Wall time.Duration
}

// Fingerprint summarizes every deterministic counter; goldens pin it.
func (r *MegaResult) Fingerprint() string {
	return fmt.Sprintf("viewers=%d real=%d renewals=%d churned=%d evictions=%d keymsgs=%d frames=%d rows=%d peak=%d",
		r.Viewers, r.RealViewers, r.Renewals, r.Churned, r.Evictions,
		r.KeyMsgs, r.Frames, r.Rows, r.PeakPending)
}

// megaPop is the virtual viewer population. All mutation happens inside
// scheduler events, which the run token serializes, so plain fields are
// race-free. Per-viewer state is three flat slices — no per-viewer
// structs, no closures: renewal events share one top-level func and an
// index boxed once at construction.
type megaPop struct {
	sched      *sim.Scheduler
	renewEvery time.Duration
	evictAfter time.Duration
	churn      float64

	renewals  int64
	churned   int64
	evictions int64

	evict []sim.Timer // pending eviction sentinel per viewer
	args  []any       // preallocated boxed indices (one alloc each, ever)
}

func newMegaPop(sched *sim.Scheduler, n int, renewEvery, evictAfter time.Duration, churn float64) *megaPop {
	m := &megaPop{
		sched:      sched,
		renewEvery: renewEvery,
		evictAfter: evictAfter,
		churn:      churn,
		evict:      make([]sim.Timer, n),
		args:       make([]any, n),
	}
	for i := 0; i < n; i++ {
		m.args[i] = i
	}
	return m
}

// start schedules every viewer's first renewal at a uniform phase within
// one period, so the steady state is flat from the first tick.
func (m *megaPop) start() {
	for i := range m.args {
		phase := time.Duration(m.sched.Float64() * float64(m.renewEvery))
		m.sched.AfterArg(phase, m.renew, m.args[i])
	}
}

// renew is one viewer's license renewal: cancel the previous eviction
// sentinel, maybe churn, re-arm both timers.
func (m *megaPop) renew(arg any) {
	i := arg.(int)
	m.evict[i].Stop()
	if m.sched.Float64() < m.churn {
		// Silent departure: no renewal is scheduled, so the sentinel
		// fires at the deadline and admits a replacement.
		m.churned++
		m.evict[i] = m.sched.AfterArg(m.evictAfter, m.evicted, m.args[i])
		return
	}
	m.renewals++
	m.evict[i] = m.sched.AfterArg(m.evictAfter, m.evicted, m.args[i])
	m.sched.AfterArg(m.renewEvery, m.renew, m.args[i])
}

// evicted fires only for churned viewers (renewals always cancel it
// first); the slot's replacement joins with a fresh phase.
func (m *megaPop) evicted(arg any) {
	i := arg.(int)
	m.evictions++
	phase := time.Duration(m.sched.Float64() * float64(m.renewEvery))
	m.sched.AfterArg(phase, m.renew, m.args[i])
}

// RunMegaScale runs one population point: build the real overlay, warm
// it, release the virtual population, and sample metrics on the sim
// clock until the window closes.
func RunMegaScale(cfg MegaConfig) (*MegaResult, error) {
	cfg.fill()
	if cfg.Shards > 0 {
		return runMegaSharded(cfg)
	}
	wallStart := time.Now()
	sys, err := core.NewSystem(core.Options{
		Seed:            cfg.Seed,
		RekeyInterval:   cfg.RekeyInterval,
		PacketInterval:  cfg.PacketInterval,
		RootRegion:      100,
		RootMaxChildren: 4, // deep tree: keys relay through viewers
	})
	if err != nil {
		return nil, err
	}
	if err := sys.DeployChannel(core.FreeToView("live", "Live", "100")); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var frames int64
	clients := make([]*client.Client, cfg.RealViewers)
	for i := 0; i < cfg.RealViewers; i++ {
		email := fmt.Sprintf("mega%05d@e", i)
		if _, err := sys.RegisterUser(email, "pw"); err != nil {
			return nil, err
		}
		c, err := sys.NewClient(email, "pw", geo.Addr(100, 1+i%40, i+1), func(cc *client.Config) {
			cc.OnFrame = func(uint64, []byte) {
				mu.Lock()
				frames++
				mu.Unlock()
			}
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c
		delay := time.Duration(i) * 250 * time.Millisecond
		sys.Sched.Go(func() {
			sys.Sched.Sleep(delay)
			if err := c.Login(); err != nil {
				return
			}
			_ = c.Watch("live")
		})
	}
	start := sys.Sched.Now()
	warm := time.Duration(cfg.RealViewers)*250*time.Millisecond + 30*time.Second
	sys.Sched.RunUntil(start.Add(warm))

	pop := newMegaPop(sys.Sched, cfg.Viewers, cfg.RenewEvery, cfg.EvictAfter, cfg.ChurnFrac)
	pop.start()

	res := &MegaResult{Viewers: cfg.Viewers, RealViewers: cfg.RealViewers}
	sp := obs.NewSampler(cfg.SampleEvery)
	sp.AddSource(func(add func(string, float64)) {
		add("mega.renewals", float64(pop.renewals))
		add("mega.churned", float64(pop.churned))
		add("mega.evictions", float64(pop.evictions))
		p := sys.Sched.Pending()
		if p > res.PeakPending {
			res.PeakPending = p
		}
		add("sched.pending", float64(p))
	})
	sp.AddSource(func(add func(string, float64)) {
		st := sys.Net.Stats()
		add("net.sent", float64(st.Sent))
		add("net.delivered", float64(st.Delivered))
	})
	var sinks []obs.RowSink
	if cfg.MetricsCSV != nil {
		sinks = append(sinks, obs.NewCSVSink(cfg.MetricsCSV))
	}
	if cfg.MetricsJSONL != nil {
		sinks = append(sinks, obs.NewJSONLSink(cfg.MetricsJSONL))
	}
	if len(sinks) > 0 {
		sp.Stream(obs.MultiSink(sinks...))
	}
	end := start.Add(warm + cfg.Duration)
	sp.Run(sys.Sched, end)
	sys.Sched.RunUntil(end)
	sys.StopAll()

	res.Renewals = pop.renewals
	res.Churned = pop.churned
	res.Evictions = pop.evictions
	res.KeyMsgs = overlayKeyMsgs(sys, clients)
	mu.Lock()
	res.Frames = frames
	mu.Unlock()
	res.Rows = sp.Series().Len()
	res.Wall = time.Since(wallStart)
	if err := sp.Series().SinkErr(); err != nil {
		return nil, fmt.Errorf("megascale metrics sink: %w", err)
	}
	return res, nil
}

// RunMegaSweep measures several population sizes, spreading independent
// points over cfg.Parallelism workers. Sweep points never share the
// config's writers (interleaved rows would be useless), so streaming is
// disabled for them.
func RunMegaSweep(cfg MegaConfig, viewerCounts []int) ([]*MegaResult, error) {
	cfg.fill()
	cfg.MetricsCSV, cfg.MetricsJSONL = nil, nil
	return runPoints(len(viewerCounts), cfg.Parallelism, func(i int) (*MegaResult, error) {
		c := cfg
		c.Viewers = viewerCounts[i]
		return RunMegaScale(c)
	})
}

// RenderMega prints the capacity study.
func RenderMega(points []*MegaResult) string {
	var b strings.Builder
	b.WriteString("Million-viewer engine capacity: virtual renewals over the timer wheel\n")
	fmt.Fprintf(&b, "%9s %6s %10s %8s %8s %9s %8s %12s %10s\n",
		"viewers", "real", "renewals", "churned", "evicted", "key-msgs", "frames", "peak-pending", "wall")
	for _, p := range points {
		fmt.Fprintf(&b, "%9d %6d %10d %8d %8d %9d %8d %12d %10s\n",
			p.Viewers, p.RealViewers, p.Renewals, p.Churned, p.Evictions,
			p.KeyMsgs, p.Frames, p.PeakPending, p.Wall.Round(time.Millisecond))
	}
	b.WriteString("(every viewer holds a renewal timer and an eviction sentinel; wall time\n")
	b.WriteString(" growing linearly in viewers is the engine-scalability acceptance bar)\n")
	return b.String()
}
