package exp

import (
	"strings"
	"testing"
	"time"

	"p2pdrm/internal/feedback"
)

// smallWeek runs a heavily scaled-down trace (1 day, light load) so the
// whole pipeline is exercised in CI time.
func smallWeek(t *testing.T) *WeekResult {
	t.Helper()
	res, err := RunWeek(WeekConfig{
		Seed:                1,
		Days:                1,
		Channels:            4,
		Users:               60,
		PeakSessionsPerHour: 60,
		MeanSession:         20 * time.Minute,
		MeanZap:             10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var cachedWeek *WeekResult

func week(t *testing.T) *WeekResult {
	if cachedWeek == nil {
		cachedWeek = smallWeek(t)
	}
	return cachedWeek
}

func TestRunWeekProducesSamplesForAllRounds(t *testing.T) {
	res := week(t)
	if res.Sessions < 100 {
		t.Fatalf("only %d sessions in a day at 60/h peak", res.Sessions)
	}
	if res.LoginFailures > res.Sessions/10 {
		t.Fatalf("login failures %d out of %d sessions", res.LoginFailures, res.Sessions)
	}
	for _, r := range feedback.Rounds {
		pts := res.Corpus.Hourly(r, res.Start, res.Hours)
		total := 0
		for _, p := range pts {
			total += p.Samples
		}
		if total == 0 {
			t.Fatalf("no %s samples in the corpus", r)
		}
	}
	if res.PeakConcurrent < 5 {
		t.Fatalf("peak concurrency %d — workload never ramped", res.PeakConcurrent)
	}
}

func TestWeekDiurnalShapeInUserSeries(t *testing.T) {
	res := week(t)
	pts := res.Corpus.Hourly(feedback.Login1, res.Start, res.Hours)
	// Evening hours (18–23) must carry more users than night (1–5).
	evening, night := 0.0, 0.0
	for _, p := range pts {
		switch hod := p.Hour % 24; {
		case hod >= 18 && hod <= 23:
			evening += p.Users
		case hod >= 1 && hod <= 5:
			night += p.Users
		}
	}
	if evening < 2*night {
		t.Fatalf("evening users %.0f vs night %.0f — diurnal shape lost", evening, night)
	}
}

func TestWeekLatencyFlatDespiteLoad(t *testing.T) {
	// The paper's headline result: protocol latency is essentially
	// independent of concurrent users.
	res := week(t)
	for _, r := range []feedback.Round{feedback.Login2, feedback.Switch2} {
		if corr := res.Correlations()[r]; corr > 0.5 {
			t.Fatalf("%s correlation %.3f — latency tracks load, architecture broken", r, corr)
		}
	}
}

func TestWeekFig6CDFsNearlyIdentical(t *testing.T) {
	res := week(t)
	peak, off := res.Fig6Split(feedback.Switch1)
	if len(peak) == 0 || len(off) == 0 {
		t.Fatal("missing peak or off-peak samples")
	}
	cp := feedback.CDF(peak, time.Second, 50)
	co := feedback.CDF(off, time.Second, 50)
	if gap := feedback.MaxAbsCDFGap(cp, co); gap > 0.25 {
		t.Fatalf("peak/off-peak CDF gap %.3f — should be nearly identical", gap)
	}
}

func TestRenderers(t *testing.T) {
	res := week(t)
	fig5 := RenderFig5(res, "Fig 5(a)", feedback.Login1, feedback.Login2)
	if !strings.Contains(fig5, "LOGIN1") || !strings.Contains(fig5, "users") {
		t.Fatalf("fig5 render missing headers:\n%s", fig5[:200])
	}
	fig6 := RenderFig6(res, feedback.Join, time.Second, 10)
	if !strings.Contains(fig6, "JOIN") || !strings.Contains(fig6, "ΔCDF") {
		t.Fatal("fig6 render missing content")
	}
	corr := RenderCorrelations(res)
	if !strings.Contains(corr, "Pearson") {
		t.Fatal("correlation render missing content")
	}
}

func TestFlashCrowdBaselineScaling(t *testing.T) {
	// Shape assertion (§I): as correlated arrivals grow past the central
	// License Manager's capacity, its tail latency blows up; the
	// distributed design's end-to-end latency stays roughly flat.
	pts, err := RunFlashSweep(FlashConfig{
		Seed:      1,
		Spread:    5 * time.Second,
		Workers:   1,
		ServiceMS: 10,
	}, []int{50, 600})
	if err != nil {
		t.Fatal(err)
	}
	small, large := pts[0], pts[1]
	tradGrowth := float64(large.Trad.P95) / float64(small.Trad.P95+1)
	drmGrowth := float64(large.DRM.P95) / float64(small.DRM.P95+1)
	if tradGrowth < 3 {
		t.Fatalf("traditional p95 grew only %.1f× (%v → %v) — central server should saturate",
			tradGrowth, small.Trad.P95, large.Trad.P95)
	}
	if drmGrowth > 2.5 {
		t.Fatalf("drm p95 grew %.1f× (%v → %v) — distributed design should stay flat",
			drmGrowth, small.DRM.P95, large.DRM.P95)
	}
	if large.Trad.P95 < large.DRM.P95 {
		t.Fatalf("at %d viewers: trad p95 %v should exceed drm end-to-end p95 %v",
			large.Viewers, large.Trad.P95, large.DRM.P95)
	}
	if large.DRM.Failures > large.Viewers/20 {
		t.Fatalf("drm failures = %d of %d", large.DRM.Failures, large.Viewers)
	}
	if s := RenderFlash(&large); !strings.Contains(s, "traditional") {
		t.Fatal("flash render missing content")
	}
	if s := RenderFlashSweep(pts); !strings.Contains(s, "viewers") {
		t.Fatal("sweep render missing content")
	}
}

func TestFarmScalingImprovesTailLatency(t *testing.T) {
	pts, err := RunFarmScaling(FarmConfig{
		Seed:      1,
		Viewers:   150,
		Spread:    15 * time.Second,
		FarmSizes: []int{1, 4},
		Workers:   1,
		ServiceMS: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Four backends must beat one on p95 under the same burst.
	if pts[1].LoginP95 >= pts[0].LoginP95 {
		t.Fatalf("farm=4 login p95 %v not better than farm=1 %v",
			pts[1].LoginP95, pts[0].LoginP95)
	}
	if pts[0].Failures > 0 || pts[1].Failures > 0 {
		t.Fatalf("failures: %d / %d", pts[0].Failures, pts[1].Failures)
	}
	if s := RenderFarm(pts); !strings.Contains(s, "farm") {
		t.Fatal("farm render missing content")
	}
}
