package exp

import (
	"os"
	"testing"
	"time"

	"p2pdrm/internal/feedback"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/svc"
)

// The renderers are the repo's human-facing output: EXPERIMENTS.md quotes
// them and `drmsim` prints them. These golden-string tests pin the exact
// bytes for small hand-built fixtures so a formatting change is a
// deliberate diff here, not a silent drift between docs and binary.
// Regenerate with GOLDEN_PRINT=1 (the same switch as the determinism
// goldens).

func checkGolden(t *testing.T, name, got, want string) {
	t.Helper()
	if os.Getenv("GOLDEN_PRINT") != "" {
		t.Logf("%s golden:\n%s<<<end>>>", name, got)
		return
	}
	if got != want {
		t.Errorf("%s moved\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// histOf builds a snapshot from literal observations.
func histOf(ds ...time.Duration) *obs.HistSnapshot {
	var h obs.Histogram
	for _, d := range ds {
		h.Observe(d)
	}
	return h.Snapshot()
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

var reportStart = time.Date(2008, 6, 23, 0, 0, 0, 0, time.UTC)

// reportWeekFixture builds a two-hour corpus: hour 0 has three LOGIN1
// samples (median 200ms) at 5 mean users, hour 1 is silent at 2 users.
func reportWeekFixture() *WeekResult {
	corpus := feedback.NewCorpus()
	log := feedback.NewLog()
	log.Record(feedback.Login1, reportStart.Add(10*time.Minute), ms(100), true)
	log.Record(feedback.Login1, reportStart.Add(20*time.Minute), ms(200), true)
	log.Record(feedback.Login1, reportStart.Add(30*time.Minute), ms(300), true)
	corpus.Submit(log)
	corpus.RecordUsers(reportStart.Add(10*time.Minute), 4)
	corpus.RecordUsers(reportStart.Add(40*time.Minute), 6)
	corpus.RecordUsers(reportStart.Add(90*time.Minute), 2)
	return &WeekResult{Corpus: corpus, Start: reportStart, Hours: 2}
}

func TestRenderFig5Golden(t *testing.T) {
	got := RenderFig5(reportWeekFixture(), "Fig 5(a) login protocol", feedback.Login1)
	const want = "Fig 5(a) login protocol — median latency vs. total concurrent users\n" +
		"hour  hod       users  med(LOGIN1)\n" +
		"0     0             5      200.0ms\n" +
		"1     1             2            -\n"
	checkGolden(t, "RenderFig5", got, want)
}

func TestRenderFig6Golden(t *testing.T) {
	corpus := feedback.NewCorpus()
	log := feedback.NewLog()
	// Off-peak (hour 2): 150ms, 250ms. Peak (hour 19): 100, 200, 300ms.
	log.Record(feedback.Login1, reportStart.Add(2*time.Hour), ms(150), true)
	log.Record(feedback.Login1, reportStart.Add(2*time.Hour+time.Minute), ms(250), true)
	log.Record(feedback.Login1, reportStart.Add(19*time.Hour), ms(100), true)
	log.Record(feedback.Login1, reportStart.Add(19*time.Hour+time.Minute), ms(200), true)
	log.Record(feedback.Login1, reportStart.Add(19*time.Hour+2*time.Minute), ms(300), true)
	corpus.Submit(log)
	res := &WeekResult{Corpus: corpus, Start: reportStart, Hours: 24}
	got := RenderFig6(res, feedback.Login1, 400*time.Millisecond, 4)
	const want = "CDF of LOGIN1 latency — peak (18–24h, n=3) vs off-peak (0–18h, n=2)\n" +
		"   latency    P(peak)     P(off)\n" +
		"     0.0ms      0.000      0.000\n" +
		"   133.3ms      0.333      0.000\n" +
		"   266.7ms      0.667      1.000\n" +
		"   400.0ms      1.000      1.000\n" +
		"max |ΔCDF| = 0.333 (paper: curves \"virtually identical\")\n"
	checkGolden(t, "RenderFig6", got, want)
}

func TestRenderFlashGolden(t *testing.T) {
	res := &FlashResult{
		Viewers: 200,
		Trad: SideResult{
			Median: ms(900), P95: ms(4800), Max: ms(7000),
			AllServedIn: ms(9000), Failures: 3, MaxQueue: 120,
		},
		DRM: SideResult{
			Median: ms(310), P95: ms(420), Max: ms(600),
			AllServedIn: ms(1500), Failures: 0, MaxQueue: 4,
		},
	}
	got := RenderFlash(res)
	const want = "Flash crowd at live-event start — traditional DRM vs. this design\n" +
		"                              traditional      p2p-drm\n" +
		"median latency                    900.0ms      310.0ms\n" +
		"p95 latency                      4800.0ms      420.0ms\n" +
		"max latency                      7000.0ms      600.0ms\n" +
		"all viewers served in            9000.0ms     1500.0ms\n" +
		"failures                                3            0\n" +
		"max server queue depth                120            4\n" +
		"(traditional = per-file license at playback from one central stateful server;\n" +
		" p2p-drm = full login+switch+join against stateless farms with P2P delegation)\n"
	checkGolden(t, "RenderFlash", got, want)
}

func TestRenderFaultFlashGolden(t *testing.T) {
	res := &FaultFlashResult{
		Viewers: 80, Watching: 80, Degraded: 12, Partitioned: 10,
		Median: ms(400), P95: ms(2500), Max: ms(9000), AllWatchingIn: ms(30000),
		TransportRetries: 41, BreakerOpens: 3, BreakerRejects: 17,
		ProtocolRestarts: 2, SessionRetries: 1,
		Net: simnet.NetStats{Sent: 4000, Delivered: 3870, Dropped: 130, DroppedLinkCut: 40, DroppedLoss: 90},
		Calls: map[string]svc.CallStats{
			"drm.login1": {Attempts: 90, Retries: 10, Failures: 2, BreakerRejects: 9, Hist: histOf(ms(140), ms(150), ms(600))},
			"drm.login2": {Attempts: 81, Retries: 0, Failures: 1, BreakerRejects: 8, Hist: histOf(ms(145), ms(155))},
		},
		Phases: []Phase{
			{
				Name: "ramp", Start: reportStart, End: reportStart.Add(5 * time.Second),
				Endpoints: map[string]svc.Metrics{
					"um.login1": {Requests: 60, Errors: 0, Hist: histOf(ms(12), ms(15))},
				},
			},
			{
				Name: "partition", Start: reportStart.Add(5 * time.Second), End: reportStart.Add(10 * time.Second),
				Endpoints: map[string]svc.Metrics{
					"um.login1": {Requests: 30, Errors: 4, Hist: histOf(ms(18))},
				},
			},
		},
	}
	got := RenderFaultFlash(res)
	const want = "Flash crowd with injected faults — recovery behaviour\n" +
		"  viewers 80 (degraded links 12, partitioned 10) — watching 80\n" +
		"  arrival→watching: median 400.0ms  p95 2500.0ms  max 9000.0ms  (all watching in 30000.0ms)\n" +
		"  recovery: 41 transport retries, 3 breaker opens (17 fast rejects),\n" +
		"            2 protocol restarts, 1 session retries\n" +
		"  network: 4000 messages sent, 130 dropped (90 lost in transit, 40 on severed links)\n" +
		"  service          attempts  retries     fail  rejects        p50        p95\n" +
		"  drm.login1             90       10        2        9    148.9ms    595.6ms\n" +
		"  drm.login2             81        0        1        8    144.7ms    153.1ms\n" +
		"  per-phase endpoint activity:\n" +
		"  [ramp     ] +0.0ms → +5000.0ms\n" +
		"    um.login1      req     60  err    0  p50     11.9ms  p95     15.1ms\n" +
		"  [partition] +5000.0ms → +10000.0ms\n" +
		"    um.login1      req     30  err    4  p50     18.1ms  p95     18.1ms\n" +
		"(retries cover lost packets; the breaker rides out the manager-farm outage;\n" +
		" protocol restarts re-run round 1 instead of resending one-time round-2 tokens)\n"
	checkGolden(t, "RenderFaultFlash", got, want)
}

func TestRenderEndpointsGolden(t *testing.T) {
	eps := map[string]svc.Metrics{
		"um.login1": {Requests: 500, Errors: 2, Hist: histOf(ms(10), ms(12), ms(14), ms(100))},
		"cm.join":   {Requests: 200, Errors: 0, Hist: histOf(ms(5), ms(6))},
		"um.quiet":  {Requests: 0}, // zero traffic: must be skipped
	}
	got := RenderEndpoints("Deployment", eps)
	const want = "Deployment — per-endpoint latency distribution\n" +
		"service             requests    err       mean        p50        p95        p99\n" +
		"cm.join                  200      0      5.5ms      5.0ms      6.0ms      6.0ms\n" +
		"um.login1                500      2     34.0ms     11.9ms     99.6ms     99.6ms\n"
	checkGolden(t, "RenderEndpoints", got, want)
}

func TestRenderCallTableGolden(t *testing.T) {
	calls := map[string]svc.CallStats{
		"drm.switch1": {Attempts: 320, Retries: 20, Failures: 3, BreakerRejects: 5, Hist: histOf(ms(150), ms(160), ms(900))},
		"drm.join":    {Attempts: 290, Retries: 0, Failures: 0, BreakerRejects: 0, Hist: histOf(ms(50), ms(55))},
	}
	got := RenderCallTable("Clients", calls)
	const want = "Clients — client-side calls (whole-call latency, retries included)\n" +
		"service             attempts retries   fail  rejects        p50        p95        p99\n" +
		"drm.join                 290       0      0        0     49.8ms     55.1ms     55.1ms\n" +
		"drm.switch1              320      20      3        5    161.5ms    897.6ms    897.6ms\n"
	checkGolden(t, "RenderCallTable", got, want)
}

func TestRenderPhasesEmpty(t *testing.T) {
	if got := RenderPhases(nil); got != "  per-phase endpoint activity:\n" {
		t.Errorf("empty phases rendered %q", got)
	}
}
