package exp

// This file wires internal/obs into the experiment harness: one shared
// system sampler (endpoint + network sources), a cross-client call
// aggregator, a per-phase endpoint recorder for the chaos scenarios,
// and the CSV exporters behind `drmsim -metrics` and `make metrics`.
// Everything here reads atomics on scheduled sim events and sorts its
// output keys, so enabling it changes no golden fingerprint.

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/core"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/svc"
)

// NewSystemSampler builds a sampler over the deployment-wide state:
// per-endpoint cumulative requests/errors plus per-interval p50/p95
// (from histogram snapshot deltas), and the network message counters.
// Call its Run before driving the scheduler; scenario-specific sources
// (client calls, concurrency) are added by the caller.
func NewSystemSampler(sys *core.System, every time.Duration) *obs.Sampler {
	sp := obs.NewSampler(every)
	prev := make(map[string]*obs.HistSnapshot) // per-endpoint last snapshot
	sp.AddSource(func(add func(string, float64)) {
		for name, m := range sys.EndpointTotals() {
			add("ep."+name+".req", float64(m.Requests))
			add("ep."+name+".err", float64(m.Errors))
			d := m.Hist.Sub(prev[name])
			prev[name] = m.Hist
			if d.Count() > 0 {
				add("ep."+name+".p50ms", msFloat(d.Quantile(0.5)))
				add("ep."+name+".p95ms", msFloat(d.Quantile(0.95)))
			}
		}
	})
	sp.AddSource(func(add func(string, float64)) {
		st := sys.Net.Stats()
		add("net.sent", float64(st.Sent))
		add("net.delivered", float64(st.Delivered))
		add("net.dropped", float64(st.Dropped))
		add("net.dropped_linkcut", float64(st.DroppedLinkCut))
		add("net.dropped_loss", float64(st.DroppedLoss))
	})
	return sp
}

// CallAggregator accumulates per-service client-side CallStats across a
// scenario's whole client population — sessions still running and
// sessions already finished. Merging is commutative (counter and bucket
// addition), so totals are independent of map iteration order and of
// when each client departs: the aggregate is deterministic.
type CallAggregator struct {
	mu   sync.Mutex
	live map[*client.Client]struct{}
	done map[string]svc.CallStats
}

// NewCallAggregator creates an empty aggregator.
func NewCallAggregator() *CallAggregator {
	return &CallAggregator{
		live: make(map[*client.Client]struct{}),
		done: make(map[string]svc.CallStats),
	}
}

// Track registers a live client.
func (a *CallAggregator) Track(c *client.Client) {
	a.mu.Lock()
	a.live[c] = struct{}{}
	a.mu.Unlock()
}

// Finish folds a departing client's final stats into the accumulator.
func (a *CallAggregator) Finish(c *client.Client) {
	stats := c.Policy().Stats()
	a.mu.Lock()
	if _, ok := a.live[c]; ok {
		delete(a.live, c)
		for name, cs := range stats {
			t := a.done[name]
			t.Merge(cs)
			a.done[name] = t
		}
	}
	a.mu.Unlock()
}

// Totals merges finished and still-live clients into one per-service
// view.
func (a *CallAggregator) Totals() map[string]svc.CallStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]svc.CallStats, len(a.done))
	for name, cs := range a.done {
		out[name] = mergeCopy(cs)
	}
	for c := range a.live {
		for name, cs := range c.Policy().Stats() {
			t := out[name]
			t.Merge(cs)
			out[name] = t
		}
	}
	return out
}

// Source returns a sampler source exposing cumulative client-side
// attempts/retries plus per-interval whole-call p50 per service.
func (a *CallAggregator) Source() obs.Source {
	prev := make(map[string]*obs.HistSnapshot)
	return func(add func(string, float64)) {
		for name, cs := range a.Totals() {
			add("call."+name+".attempts", float64(cs.Attempts))
			add("call."+name+".retries", float64(cs.Retries))
			d := cs.Hist.Sub(prev[name])
			prev[name] = cs.Hist
			if d.Count() > 0 {
				add("call."+name+".p50ms", msFloat(d.Quantile(0.5)))
			}
		}
	}
}

// Phase is one named window of a scenario with the endpoint activity
// (snapshot deltas) that happened inside it.
type Phase struct {
	Name      string
	Start     time.Time
	End       time.Time
	Endpoints map[string]svc.Metrics // per-service deltas within the phase
}

// PhaseBoundary starts a named phase at an instant; the phase runs
// until the next boundary (or scenario end).
type PhaseBoundary struct {
	Name string
	At   time.Time
}

// PhaseRecorder captures endpoint snapshots at scheduled boundaries.
type PhaseRecorder struct {
	sys    *core.System
	mu     sync.Mutex
	names  []string
	starts []time.Time
	snaps  []map[string]svc.Metrics
}

// RecordPhases schedules a snapshot at every boundary. Boundaries at or
// before the current virtual time are captured immediately; call it
// before driving the scheduler. Snapshot events read only atomic
// counters — no randomness, no fingerprint impact.
func RecordPhases(sys *core.System, bounds []PhaseBoundary) *PhaseRecorder {
	pr := &PhaseRecorder{sys: sys}
	sorted := append([]PhaseBoundary(nil), bounds...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At.Before(sorted[j].At) })
	for _, b := range sorted {
		b := b
		capture := func() {
			pr.mu.Lock()
			pr.names = append(pr.names, b.Name)
			pr.starts = append(pr.starts, pr.sys.Sched.Now())
			pr.snaps = append(pr.snaps, pr.sys.EndpointTotals())
			pr.mu.Unlock()
		}
		if !b.At.After(sys.Sched.Now()) {
			capture()
		} else {
			sys.Sched.At(b.At, capture)
		}
	}
	return pr
}

// Finish closes the last phase at the current virtual time and returns
// every phase's endpoint deltas (services with no traffic omitted).
func (pr *PhaseRecorder) Finish() []Phase {
	now := pr.sys.Sched.Now()
	final := pr.sys.EndpointTotals()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	phases := make([]Phase, 0, len(pr.names))
	for i := range pr.names {
		endT, endSnap := now, final
		if i+1 < len(pr.names) {
			endT, endSnap = pr.starts[i+1], pr.snaps[i+1]
		}
		eps := make(map[string]svc.Metrics)
		for name, cur := range endSnap {
			d := cur.Sub(pr.snaps[i][name])
			if d.Requests != 0 || d.Errors != 0 {
				eps[name] = d
			}
		}
		phases = append(phases, Phase{Name: pr.names[i], Start: pr.starts[i], End: endT, Endpoints: eps})
	}
	return phases
}

// sortedMetricNames returns the sorted service names of an endpoint map.
func sortedMetricNames(m map[string]svc.Metrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteEndpointsCSV exports a server-side endpoint snapshot, one sorted
// row per service, with mean/p50/p95/p99 milliseconds off the histogram.
func WriteEndpointsCSV(w io.Writer, eps map[string]svc.Metrics) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"service", "requests", "errors", "decode_errors", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}); err != nil {
		return err
	}
	for _, name := range sortedMetricNames(eps) {
		m := eps[name]
		rec := []string{
			name,
			strconv.FormatInt(m.Requests, 10),
			strconv.FormatInt(m.Errors, 10),
			strconv.FormatInt(m.DecodeErrors, 10),
			msField(m.Hist.Mean()),
			msField(m.Hist.Quantile(0.5)),
			msField(m.Hist.Quantile(0.95)),
			msField(m.Hist.Quantile(0.99)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCallsCSV exports a client-side per-service call snapshot.
func WriteCallsCSV(w io.Writer, calls map[string]svc.CallStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"service", "attempts", "retries", "failures", "breaker_rejects", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}); err != nil {
		return err
	}
	for _, name := range sortedCallNames(calls) {
		s := calls[name]
		rec := []string{
			name,
			strconv.FormatInt(s.Attempts, 10),
			strconv.FormatInt(s.Retries, 10),
			strconv.FormatInt(s.Failures, 10),
			strconv.FormatInt(s.BreakerRejects, 10),
			msField(s.Hist.Mean()),
			msField(s.Hist.Quantile(0.5)),
			msField(s.Hist.Quantile(0.95)),
			msField(s.Hist.Quantile(0.99)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePhasesCSV exports per-phase endpoint deltas: phases in time
// order, services sorted within each phase.
func WritePhasesCSV(w io.Writer, phases []Phase) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "start", "end", "service", "requests", "errors", "p50_ms", "p95_ms"}); err != nil {
		return err
	}
	for _, ph := range phases {
		for _, name := range sortedMetricNames(ph.Endpoints) {
			m := ph.Endpoints[name]
			rec := []string{
				ph.Name,
				ph.Start.UTC().Format(time.RFC3339),
				ph.End.UTC().Format(time.RFC3339),
				name,
				strconv.FormatInt(m.Requests, 10),
				strconv.FormatInt(m.Errors, 10),
				msField(m.Hist.Quantile(0.5)),
				msField(m.Hist.Quantile(0.95)),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func msFloat(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func msField(d time.Duration) string {
	return strconv.FormatFloat(msFloat(d), 'f', 3, 64)
}

// mergeCopy deep-copies a CallStats so aggregator snapshots never
// alias the accumulator's histograms.
func mergeCopy(o svc.CallStats) svc.CallStats {
	var t svc.CallStats
	t.Merge(o)
	return t
}
