// Package exp contains the evaluation harness: each experiment rebuilds
// one table or figure of the paper's §VI (plus the baseline and ablation
// studies indexed in DESIGN.md) on top of the simulated deployment.
package exp

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pdrm/internal/client"
	"p2pdrm/internal/core"
	"p2pdrm/internal/feedback"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/obs"
	"p2pdrm/internal/sim"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/svc"
	"p2pdrm/internal/workload"
)

// WeekConfig scales the Fig. 5 / Fig. 6 reproduction: a multi-day trace
// of diurnal login/switch/join traffic against the paper's deployment
// shape (two User Managers, four Channel Managers over two partitions).
type WeekConfig struct {
	Seed int64
	// Days of simulated time (paper: 7, June 23–29 2008).
	Days int
	// Channels deployed (paper: >200; scaled down by default to 24).
	Channels int
	// Users in the account pool.
	Users int
	// PeakSessionsPerHour is the session arrival rate at the diurnal
	// peak. With 45-minute sessions, concurrency ≈ 0.75×rate.
	PeakSessionsPerHour float64
	// MeanSession / MeanZap parameterize viewing behaviour.
	MeanSession time.Duration
	MeanZap     time.Duration
	// UserMgrFarm (default 2) and ChannelMgrFarm per partition (default
	// 2, over 2 partitions = 4 total) mirror §VI.
	UserMgrFarm    int
	ChannelMgrFarm int
	// Capacity of each manager backend.
	UMWorkers   int
	UMServiceMS float64
	CMWorkers   int
	CMServiceMS float64
	// SampleEvery is the concurrent-user sampling period.
	SampleEvery time.Duration
	// MetricsEvery is the system-metrics sampling period (endpoint and
	// network counters into WeekResult.Series). Default 1h — the same
	// granularity as the paper's per-hour tables.
	MetricsEvery time.Duration
	// Parallelism bounds concurrent replicates in RunWeekReplicates
	// (0 = GOMAXPROCS, 1 = sequential); a single RunWeek ignores it.
	Parallelism int
	// Shards switches the week onto the sharded engine: the measured
	// protocol deployment stays on the control scheduler while
	// VirtualViewers stripe over the worker lanes. Zero keeps the legacy
	// serial engine (the existing goldens).
	Shards int
	// VirtualViewers is the ambient license-renewal population carried
	// by the lanes when Shards > 0 — the broadcast audience whose
	// renewals tick alongside the measured sessions. Ignored (default 0)
	// on the serial engine.
	VirtualViewers int
	// TraceEvery arms causal tracing on a deterministic head-sampled
	// cohort: a session is traced when obs.Sampled(Seed, key, TraceEvery)
	// holds for its session key (email#arrival). 1 traces every session,
	// 0 disables tracing entirely — no ring is allocated and the run is
	// byte-identical to an untraced one. Sampling is a pure hash of the
	// seed and key (no RNG draws), so the traced cohort — and the
	// exported spans — are identical at any shard count.
	TraceEvery int
	// TraceCap bounds the span ring (default 1 << 16). Overflow evicts
	// the oldest spans; exports report the dropped count.
	TraceCap int
}

func (c *WeekConfig) fill() {
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.Channels <= 0 {
		c.Channels = 24
	}
	if c.Users <= 0 {
		c.Users = 1200
	}
	if c.PeakSessionsPerHour <= 0 {
		c.PeakSessionsPerHour = 400
	}
	if c.MeanSession <= 0 {
		c.MeanSession = 45 * time.Minute
	}
	if c.MeanZap <= 0 {
		c.MeanZap = 15 * time.Minute
	}
	if c.UserMgrFarm <= 0 {
		c.UserMgrFarm = 2
	}
	if c.ChannelMgrFarm <= 0 {
		c.ChannelMgrFarm = 2
	}
	if c.UMWorkers <= 0 {
		c.UMWorkers = 4
	}
	if c.UMServiceMS <= 0 {
		c.UMServiceMS = 3
	}
	if c.CMWorkers <= 0 {
		c.CMWorkers = 4
	}
	if c.CMServiceMS <= 0 {
		c.CMServiceMS = 2
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Minute
	}
	if c.MetricsEvery <= 0 {
		c.MetricsEvery = time.Hour
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 1 << 16
	}
}

// WeekResult carries the corpus and trace parameters for rendering.
type WeekResult struct {
	Corpus         *feedback.Corpus
	Start          time.Time
	Hours          int
	PeakConcurrent int
	Sessions       int
	LoginFailures  int

	// Calls aggregates client-side per-service call stats (histograms
	// included) across every session of the week — the client-measured
	// distributions behind the Fig. 5 medians.
	Calls map[string]svc.CallStats
	// Endpoints is the final server-side endpoint snapshot.
	Endpoints map[string]svc.Metrics
	// Series is the MetricsEvery-interval system time series.
	Series *obs.Series
	// Net is the network message counters for the whole week.
	Net simnet.NetStats
	// VirtualRenewals / VirtualChurned / VirtualEvictions count the
	// lane-resident ambient population's events (sharded runs only).
	VirtualRenewals  int64
	VirtualChurned   int64
	VirtualEvictions int64
	// Trace is the span ring for the traced session cohort (nil unless
	// WeekConfig.TraceEvery > 0).
	Trace *obs.Trace
}

// RunWeek simulates the measurement week and returns the feedback
// corpus. Content production is disabled: Fig. 5/6 measure only the five
// protocol rounds, and weeks of per-packet streaming would dominate the
// simulation for no additional fidelity (keys, joins and renewals still
// flow for real).
func RunWeek(cfg WeekConfig) (*WeekResult, error) {
	cfg.fill()
	expService := func(rng *rand.Rand, meanMS float64) func() time.Duration {
		var mu sync.Mutex
		return func() time.Duration {
			mu.Lock()
			defer mu.Unlock()
			return time.Duration(rng.ExpFloat64() * meanMS * float64(time.Millisecond))
		}
	}
	svcRng := rand.New(rand.NewSource(cfg.Seed + 7))

	var eng *sim.Sharded
	if cfg.Shards > 0 {
		eng = sim.NewSharded(time.Date(2008, 6, 23, 0, 0, 0, 0, time.UTC), cfg.Seed, cfg.Shards, megaLookahead)
	}
	var trace *obs.Trace
	if cfg.TraceEvery > 0 {
		trace = obs.NewTrace(cfg.TraceCap)
	}
	sys, err := core.NewSystem(core.Options{
		Trace:          trace,
		Scheduler:      schedulerOf(eng),
		Seed:           cfg.Seed,
		UserMgrFarm:    cfg.UserMgrFarm,
		Partitions:     []string{"p1", "p2"},
		ChannelMgrFarm: cfg.ChannelMgrFarm,
		UserMgrCapacity: core.CapacityModel{
			Workers: cfg.UMWorkers, ServiceTime: expService(svcRng, cfg.UMServiceMS),
		},
		ChannelMgrCapacity: core.CapacityModel{
			Workers: cfg.CMWorkers, ServiceTime: expService(svcRng, cfg.CMServiceMS),
		},
		PacketInterval: 24 * 365 * time.Hour, // content off (see doc comment)
		RekeyInterval:  time.Minute,
		RootRegion:     100, // broadcasters' servers live in the served region
	})
	if err != nil {
		return nil, err
	}
	start := sys.Sched.Now()
	end := start.Add(time.Duration(cfg.Days) * 24 * time.Hour)

	channelIDs := make([]string, cfg.Channels)
	for i := range channelIDs {
		id := fmt.Sprintf("ch%03d", i)
		channelIDs[i] = id
		if err := sys.DeployChannel(core.FreeToView(id, "Channel "+id, "100")); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Users; i++ {
		email := fmt.Sprintf("user%05d@example.com", i)
		if _, err := sys.RegisterUser(email, "pw"); err != nil {
			return nil, err
		}
	}

	res := &WeekResult{
		Corpus: feedback.NewCorpus(),
		Start:  start,
		Hours:  cfg.Days * 24,
	}
	var mu sync.Mutex
	active := 0
	hostSeq := 0

	// System metrics: endpoint/network sampler plus the cross-session
	// call aggregator. Sampling rides scheduled events and reads only
	// atomics, so the corpus (and its golden fingerprint) is identical
	// with or without it.
	agg := NewCallAggregator()
	sampler := NewSystemSampler(sys, cfg.MetricsEvery)
	sampler.AddSource(agg.Source())
	sampler.AddSource(func(add func(string, float64)) {
		mu.Lock()
		add("users.active", float64(active))
		mu.Unlock()
	})

	// Ambient lane population (sharded runs): renewals tick on the
	// worker lanes, observed by the sampler at epoch boundaries.
	var pops []*shardPop
	if eng != nil && cfg.VirtualViewers > 0 {
		pops = newShardPops(eng, cfg.VirtualViewers, cfg.Seed,
			5*time.Minute, 12*time.Minute+30*time.Second, 0.02)
		sampler.AddSource(func(add func(string, float64)) {
			renewals, churned, evictions := popTotals(pops)
			add("virtual.renewals", float64(renewals))
			add("virtual.churned", float64(churned))
			add("virtual.evictions", float64(evictions))
		})
	}
	sampler.Run(sys.Sched, end)

	wlRng := rand.New(rand.NewSource(cfg.Seed + 13))
	arrivals := workload.NewArrivals(wlRng, workload.DiurnalProfile(), cfg.PeakSessionsPerHour, start)
	zipf := workload.NewZipf(wlRng, 1.3, cfg.Channels)
	sessions := workload.NewSessions(wlRng, cfg.MeanSession, cfg.MeanZap)

	// Concurrent-user sampler (the "Total # of Concurrent Users" series).
	sys.Sched.Go(func() {
		for {
			if !sys.Sched.Now().Before(end) {
				return
			}
			sys.Sched.Sleep(cfg.SampleEvery)
			mu.Lock()
			n := active
			if n > res.PeakConcurrent {
				res.PeakConcurrent = n
			}
			res.Corpus.RecordUsers(sys.Sched.Now(), n)
			mu.Unlock()
		}
	})

	runSession := func(email string, addr simnet.Addr, traceKey string) {
		c, err := sys.NewClient(email, "pw", addr, func(cc *client.Config) {
			cc.Parents = 2
			if trace != nil && obs.Sampled(cfg.Seed, traceKey, cfg.TraceEvery) {
				cc.TraceID = obs.TraceIDFor(cfg.Seed, traceKey)
			} else {
				// Head sampling: sessions outside the cohort stay dark
				// (no flat call spans crowding the ring).
				cc.Trace = nil
			}
		})
		if err != nil {
			return
		}
		agg.Track(c)
		defer func() {
			c.StopWatching()
			res.Corpus.Submit(c.FeedbackLog())
			agg.Finish(c)
			sys.Net.RemoveNode(addr)
		}()
		if err := c.Login(); err != nil {
			mu.Lock()
			res.LoginFailures++
			mu.Unlock()
			return
		}
		mu.Lock()
		active++
		res.Sessions++
		mu.Unlock()
		defer func() {
			mu.Lock()
			active--
			mu.Unlock()
		}()

		remaining := sessions.Duration()
		for remaining > 0 {
			pick := channelIDs[zipf.Pick()]
			_ = c.Watch(pick) // rejections (rare) just mean another zap
			gap := sessions.ZapGap()
			if gap > remaining {
				gap = remaining
			}
			sys.Sched.Sleep(gap)
			remaining -= gap
			if !sys.Sched.Now().Before(end) {
				return
			}
		}
	}

	// Arrival driver.
	sys.Sched.Go(func() {
		for {
			now := sys.Sched.Now()
			if !now.Before(end) {
				return
			}
			gap := arrivals.Next(now)
			sys.Sched.Sleep(gap)
			if !sys.Sched.Now().Before(end) {
				return
			}
			mu.Lock()
			hostSeq++
			host := hostSeq
			mu.Unlock()
			email := fmt.Sprintf("user%05d@example.com", wlRng.Intn(cfg.Users))
			addr := geo.Addr(100, 1+host%40, 1000+host)
			// The session key folds in the arrival sequence so repeat
			// sessions by one account get distinct trace identities. The
			// sequence is assigned by the single arrival driver on the
			// control scheduler — identical at any shard count.
			traceKey := fmt.Sprintf("%s#%d", email, host)
			sys.Sched.Go(func() { runSession(email, addr, traceKey) })
		}
	})

	if eng != nil {
		eng.Run(end)
	} else {
		sys.Sched.RunUntil(end)
	}
	sys.StopAll()
	res.Calls = agg.Totals()
	res.Endpoints = sys.EndpointTotals()
	res.Series = sampler.Series()
	res.Net = sys.Net.Stats()
	res.VirtualRenewals, res.VirtualChurned, res.VirtualEvictions = popTotals(pops)
	res.Trace = trace
	return res, nil
}

// schedulerOf unwraps an optional sharded engine's control scheduler.
func schedulerOf(eng *sim.Sharded) *sim.Scheduler {
	if eng == nil {
		return nil
	}
	return eng.Ctrl()
}

// FigureSeries is one Fig. 5 panel: hourly medians for the rounds plus
// the concurrent-user series.
type FigureSeries struct {
	Rounds map[feedback.Round][]feedback.HourlyPoint
}

// Fig5 extracts the per-hour medians for the requested rounds.
func (r *WeekResult) Fig5(rounds ...feedback.Round) FigureSeries {
	out := FigureSeries{Rounds: make(map[feedback.Round][]feedback.HourlyPoint, len(rounds))}
	for _, rd := range rounds {
		out.Rounds[rd] = r.Corpus.Hourly(rd, r.Start, r.Hours)
	}
	return out
}

// Fig6Split returns peak (18–24h) and off-peak (0–18h) latency samples
// for one round.
func (r *WeekResult) Fig6Split(round feedback.Round) (peak, off []time.Duration) {
	peak = r.Corpus.Latencies(round, r.Start, 18, 24)
	off = r.Corpus.Latencies(round, r.Start, 0, 18)
	return peak, off
}

// Correlations computes the paper's Pearson r per round (§VI: −0.03…0.08
// for login/switch, 0.13 for join).
func (r *WeekResult) Correlations() map[feedback.Round]float64 {
	out := make(map[feedback.Round]float64, len(feedback.Rounds))
	for _, rd := range feedback.Rounds {
		out[rd] = feedback.PearsonHourly(r.Corpus.Hourly(rd, r.Start, r.Hours))
	}
	return out
}
