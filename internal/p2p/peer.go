// Package p2p implements the per-channel distribution overlay the DRM
// system rides on (§III, §IV-E, §IV-F3):
//
//   - admission is gated on a valid Channel Ticket: a target peer only
//     verifies the Channel Manager's signature, the expiry, the NetAddr
//     match, and that it carries the requested channel — no policy
//     evaluation, no access to other user attributes (privacy
//     intermediation, §IV-C);
//   - each accepted peering link gets a pairwise symmetric session key,
//     sent sealed to the joiner's certified public key;
//   - the evolving content key is pushed down the tree, re-encrypted
//     per-link under session keys; duplicates (from multiple parents) are
//     discarded by serial;
//   - encrypted content packets flow down sub-streams (receiver-based
//     peer-division multiplexing: a client may draw different sub-streams
//     from different parents);
//   - a peering relationship is severed when the child's Channel Ticket
//     expires without a renewal ticket being presented (§IV-D).
package p2p

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"p2pdrm/internal/cryptoutil"
	"p2pdrm/internal/keys"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/svc"
	"p2pdrm/internal/ticket"
	"p2pdrm/internal/wire"
)

// sortAddrs orders addresses collected from a map: fan-out message order
// decides the order of the simulator's seeded latency draws, so it must
// not depend on map iteration order.
func sortAddrs(a []simnet.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// Join errors.
var (
	ErrJoinRejected = errors.New("p2p: join rejected")
	ErrSeekRejected = errors.New("p2p: seek rejected")
	ErrNoSession    = errors.New("p2p: session key missing")
)

// Config parameterizes a Peer.
type Config struct {
	// ChannelID is the channel this peer carries.
	ChannelID string
	// ChanMgrKey verifies Channel Tickets presented by joiners.
	ChanMgrKey cryptoutil.PublicKey
	// Keys is this peer's identity (receives sealed session keys).
	Keys *cryptoutil.KeyPair
	// MaxChildren bounds downstream fan-out ("if resources at the peers
	// permit", §III). Default 4.
	MaxChildren int
	// Capacity is the serving capacity this peer advertises when joining
	// parents. 0 advertises MaxChildren (the cooperative default); a
	// negative value advertises zero — a declared free-rider. Parents
	// count zero-capacity joiners and refuse them once half their child
	// slots are taken, reserving the rest for contributors.
	Capacity int
	// Substreams is the channel's sub-stream count. Default 4.
	Substreams int
	// HistoryWindow retains the last N relayed frames for time-shift
	// seeks (SvcSeek). 0 retains nothing: seeks are refused with
	// seek_too_deep. Frames are retained still sealed under their
	// original content-key iteration, so history deeper than the key
	// window is unreadable to any requester (forward secrecy holds).
	HistoryWindow int
	// KeyWindow sizes the content-key ring. Default keys.DefaultWindow.
	KeyWindow int
	// ExpiryGrace extends a child's eviction deadline slightly past its
	// ticket expiry so an in-flight renewal can land. Default 10s.
	ExpiryGrace time.Duration
	// TicketCache bounds the verified Channel Ticket cache: joiners and
	// renewers present the same signed blob repeatedly, and a cache hit
	// skips the Ed25519 check (validity windows are still enforced per
	// use). Default 256 entries.
	TicketCache int
	// Arena backs the peer's hot child/dedup state with shared flat
	// slabs. Peers sharing an arena must run on one scheduler lane (a
	// System, or one shard of a sharded run). Nil gives the peer a small
	// private arena.
	Arena *Arena
	// RNG supplies session keys and seal nonces (nil = crypto/rand).
	RNG io.Reader
	// OnPacket, when set, receives each decrypted packet exactly once
	// (local playback). Relays leave it nil: forwarding never decrypts.
	OnPacket func(seq uint64, payload []byte)
	// OnDecrypt, when set, observes every live decrypt attempt on the
	// local playback path: the packet's key serial, its sequence number,
	// and the outcome (nil, keys.ErrUnknownSerial, keys.ErrHijack).
	// Clear packets carry no serial and are not reported. The
	// rights-conformance oracle rides this hook.
	OnDecrypt func(serial keys.Serial, seq uint64, err error)
	// OnHijack, when set, is told about packets failing authentication.
	OnHijack func(seq uint64, err error)
	// OnParentLoss, when set, is notified when a parent severs the link
	// (expiry or departure) so the owner can re-join elsewhere.
	OnParentLoss func(parent simnet.Addr, substreams []uint8)
	// OnChildEvicted, when set, observes expiry enforcement.
	OnChildEvicted func(child simnet.Addr)
	// OnKey, when set, observes each new content-key iteration entering
	// the ring (join response, parent push, direct rekey) — the causal
	// tracer's "first key delivered" milestone rides this hook.
	OnKey func(serial keys.Serial)
}

func (c *Config) fill() {
	if c.MaxChildren <= 0 {
		c.MaxChildren = 4
	}
	if c.Capacity < 0 {
		c.Capacity = 0 // declared free-rider
	} else if c.Capacity == 0 {
		c.Capacity = c.MaxChildren
	}
	if c.Substreams <= 0 {
		c.Substreams = 4
	}
	if c.KeyWindow <= 0 {
		c.KeyWindow = keys.DefaultWindow
	}
	if c.ExpiryGrace <= 0 {
		c.ExpiryGrace = 10 * time.Second
	}
	if c.TicketCache <= 0 {
		c.TicketCache = 256
	}
}

// Stats counts overlay activity.
type Stats struct {
	PacketsReceived  int64
	PacketsForwarded int64
	PacketsDelivered int64
	PacketsDuplicate int64
	PacketsUndecrypt int64
	KeysReceived     int64
	KeysDuplicate    int64
	KeysForwarded    int64
	JoinsAccepted    int64
	JoinsRejected    int64
	ChildrenEvicted  int64
	// Free-rider detection: joins accepted from peers advertising zero
	// serving capacity, and joins refused to protect contributor slots.
	FreeRiderJoins    int64
	FreeRidersRefused int64
	// Time-shift serving: seeks answered with frames, seeks refused
	// (typed), and total history frames shipped.
	SeeksServed         int64
	SeeksRejected       int64
	HistoryFramesServed int64
}

// substreamSet is a 256-bit subscription mask — substream IDs are uint8,
// so four words cover the space without a per-child map.
type substreamSet [4]uint64

func (s *substreamSet) add(i uint8)      { s[i>>6] |= 1 << (i & 63) }
func (s *substreamSet) has(i uint8) bool { return s[i>>6]&(1<<(i&63)) != 0 }
func (s *substreamSet) union(o substreamSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

type child struct {
	addr       simnet.Addr
	session    *cryptoutil.SealKey
	expiry     time.Time
	substreams substreamSet
}

type parent struct {
	addr       simnet.Addr
	session    *cryptoutil.SealKey
	substreams []uint8
}

// Peer is one overlay endpoint: the Channel Server root, a relay, or a
// viewing client (all three share the same mechanics).
type Peer struct {
	cfg      Config
	node     *simnet.Node
	rt       *svc.Runtime
	verifier *ticket.Verifier

	mu       sync.Mutex
	ring     *keys.Ring
	arena    *Arena
	children map[simnet.Addr]childHandle
	// kidList mirrors children sorted by address: every fan-out (key
	// push, content relay, rekey) walks this flat handle slice into the
	// arena's child slabs instead of chasing per-child heap pointers.
	// The order also fixes the simulator's seeded latency-draw sequence.
	kidList    []childHandle
	parents    map[simnet.Addr]*parent
	ourTicket  []byte
	seenSeq    map[uint64]bool
	seenRing   []uint64 // fixed-capacity eviction ring over seenSeq
	seenPos    int
	seenWindow int
	// hist retains the last HistoryWindow relayed frames (still sealed)
	// for time-shift seeks, as a circular buffer.
	hist     []wire.HistoryFrame
	histNext int
	histFull bool
	stats    Stats
	closed   bool
}

// childIndexLocked finds addr's position in the sorted kidList.
func (p *Peer) childIndexLocked(addr simnet.Addr) (int, bool) {
	i := sort.Search(len(p.kidList), func(i int) bool {
		return p.arena.at(p.kidList[i]).addr >= addr
	})
	return i, i < len(p.kidList) && p.arena.at(p.kidList[i]).addr == addr
}

// insertChildLocked files a freshly allocated child slot under its
// address, keeping kidList sorted. The caller has filled the slot.
func (p *Peer) insertChildLocked(addr simnet.Addr, h childHandle) {
	i, ok := p.childIndexLocked(addr)
	if ok {
		panic("p2p: duplicate child insert")
	}
	p.kidList = append(p.kidList, 0)
	copy(p.kidList[i+1:], p.kidList[i:])
	p.kidList[i] = h
	p.children[addr] = h
}

// delChildLocked removes a child from both views and returns its slot
// to the arena.
func (p *Peer) delChildLocked(addr simnet.Addr) {
	h, ok := p.children[addr]
	if !ok {
		return
	}
	if i, ok := p.childIndexLocked(addr); ok {
		p.kidList = append(p.kidList[:i], p.kidList[i+1:]...)
	}
	delete(p.children, addr)
	p.arena.release(h)
}

// NewPeer creates a peer on the node and registers overlay services.
func NewPeer(node *simnet.Node, cfg Config) (*Peer, error) {
	if cfg.ChannelID == "" {
		return nil, fmt.Errorf("p2p: ChannelID is required")
	}
	if cfg.Keys == nil {
		return nil, fmt.Errorf("p2p: Keys are required")
	}
	cfg.fill()
	arena := cfg.Arena
	if arena == nil {
		arena = NewArena(0)
	}
	p := &Peer{
		cfg:        cfg,
		node:       node,
		rt:         svc.NewRuntime(node),
		verifier:   ticket.NewVerifier(cfg.TicketCache),
		ring:       keys.NewRing(cfg.KeyWindow),
		arena:      arena,
		children:   make(map[simnet.Addr]childHandle),
		parents:    make(map[simnet.Addr]*parent),
		seenSeq:    make(map[uint64]bool),
		seenWindow: 4096,
	}
	// seenRing is carved from the arena's slab on the first relayed
	// packet: most peers are short-lived viewers that may never relay,
	// so paying the window up front would dominate NewPeer's footprint,
	// and departed peers' rings recycle through the arena.
	svc.Register(p.rt, wire.SvcJoin, wire.DecodeJoinReq, p.handleJoin)
	svc.Register(p.rt, wire.SvcSeek, wire.DecodeSeekReq, p.handleSeek)
	svc.RegisterOneWay(p.rt, wire.SvcKeyPush, wire.DecodeKeyPush, p.handleKeyPush)
	svc.RegisterOneWay(p.rt, wire.SvcContent, wire.DecodeContentPush, p.handleContent)
	svc.RegisterOneWay(p.rt, wire.SvcRenewal, wire.DecodeRenewalPresent, p.handleRenewal)
	svc.RegisterOneWay(p.rt, wire.SvcLeave, wire.DecodeLeaveNotice, p.handleLeave)
	svc.RegisterOneWay(p.rt, wire.SvcPeerExpire, wire.DecodeLeaveNotice, p.handlePeerExpire)
	return p, nil
}

// Node returns the underlying simnet node.
func (p *Peer) Node() *simnet.Node { return p.node }

// Runtime exposes the peer's service runtime (endpoint metrics).
func (p *Peer) Runtime() *svc.Runtime { return p.rt }

// Stats returns a snapshot of overlay counters.
func (p *Peer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Ring exposes the content-key ring (the client's playback path uses it).
func (p *Peer) Ring() *keys.Ring { return p.ring }

// TicketCacheStats reports hits and misses of the verified Channel
// Ticket cache (observability for tests and tuning).
func (p *Peer) TicketCacheStats() (hits, misses int64) {
	return p.verifier.Hits(), p.verifier.Misses()
}

// Children reports current downstream count.
func (p *Peer) Children() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.children)
}

// Parents reports current upstream count.
func (p *Peer) Parents() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.parents)
}

// SetTicket installs this peer's own Channel Ticket used when joining
// parents and when presenting renewals.
func (p *Peer) SetTicket(blob []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ourTicket = blob
}

// --- Serving side -----------------------------------------------------

// handleJoin admits a joiner per §IV-F3: verify the Channel Ticket
// against the Channel Manager's signature, the expiry, the NetAddr, and
// the channel match; check resources; then hand back a session key sealed
// to the client's certified public key and the current content keys
// sealed under the session key.
func (p *Peer) handleJoin(from simnet.Addr, req *wire.JoinReq) (*wire.JoinResp, error) {
	ct, code, reason := p.admitTicket(from, req.ChannelTicket)
	if code != wire.CodeUnknown {
		return p.rejectJoin(code, reason)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.rejectJoin(wire.CodeDeparting, "peer departing")
	}
	if _, dup := p.children[from]; !dup {
		if len(p.children) >= p.cfg.MaxChildren {
			p.mu.Unlock()
			return p.rejectJoin(wire.CodeNoCapacity, "no free capacity")
		}
		// Contributor reservation: once half the slots are taken, joiners
		// advertising zero serving capacity (free-riders) are turned away
		// so the remaining fan-out goes to peers that grow the tree.
		if req.Capacity == 0 && len(p.children) >= (p.cfg.MaxChildren+1)/2 {
			p.stats.FreeRidersRefused++
			p.mu.Unlock()
			return p.rejectJoin(wire.CodeFreeRider, "zero-capacity joiner: slots reserved for contributors")
		}
	}
	p.mu.Unlock()

	session, err := cryptoutil.NewSymKey(p.cfg.RNG)
	if err != nil {
		return p.rejectJoin(wire.CodeInternal, "session key generation failed")
	}
	sealedSession, err := cryptoutil.Seal(p.cfg.RNG, ct.ClientKey, session[:])
	if err != nil {
		return p.rejectJoin(wire.CodeInternal, "session key sealing failed")
	}
	// The pairwise session key lives for the whole peering; build its
	// AEAD once here and reuse it for every key push and content seal.
	sealer := session.Sealer()
	// Current content keys, each sealed under the new session key (§IV-E).
	var sealedKeys [][]byte
	for _, ck := range p.ring.Snapshot() {
		sk, err := sealer.Seal(p.cfg.RNG, ck.Encode(), nil)
		if err != nil {
			continue
		}
		sealedKeys = append(sealedKeys, sk)
	}

	var subs substreamSet
	if len(req.Substreams) == 0 {
		for i := 0; i < p.cfg.Substreams; i++ {
			subs.add(uint8(i))
		}
	}
	for _, s := range req.Substreams {
		subs.add(s)
	}

	p.mu.Lock()
	if h, ok := p.children[from]; ok {
		// A re-join from an existing child widens its subscription; the
		// earlier sub-streams keep flowing (multi-request PDM).
		c := p.arena.at(h)
		subs.union(c.substreams)
		*c = child{addr: from, session: sealer, expiry: ct.Expiry, substreams: subs}
	} else {
		h = p.arena.alloc()
		*p.arena.at(h) = child{addr: from, session: sealer, expiry: ct.Expiry, substreams: subs}
		p.insertChildLocked(from, h)
	}
	p.stats.JoinsAccepted++
	if req.Capacity == 0 {
		p.stats.FreeRiderJoins++
	}
	p.mu.Unlock()
	p.scheduleEviction(from, ct.Expiry)

	return &wire.JoinResp{
		Accept:        true,
		SealedSession: sealedSession,
		SealedKeys:    sealedKeys,
	}, nil
}

// admitTicket runs the §IV-F3 admission checks shared by join and seek:
// signature, validity window, NetAddr binding, channel match. It returns
// the verified ticket, or a typed refusal (code != CodeUnknown).
func (p *Peer) admitTicket(from simnet.Addr, blob []byte) (*ticket.ChannelTicket, wire.Code, string) {
	now := p.node.Scheduler().Now()
	ct, err := p.verifier.VerifyChannel(blob, p.cfg.ChanMgrKey)
	if err != nil {
		return nil, wire.CodeBadTicket, "channel ticket: " + err.Error()
	}
	if err := ct.ValidAt(now); err != nil {
		return nil, wire.CodeExpiredTicket, "channel ticket: " + err.Error()
	}
	if ct.NetAddr != string(from) {
		return nil, wire.CodeAddrMismatch, "ticket NetAddr does not match connection"
	}
	if ct.ChannelID != p.cfg.ChannelID {
		return nil, wire.CodeWrongChannel, "not carrying channel " + ct.ChannelID
	}
	return ct, wire.CodeUnknown, ""
}

func (p *Peer) rejectJoin(code wire.Code, reason string) (*wire.JoinResp, error) {
	p.mu.Lock()
	p.stats.JoinsRejected++
	p.mu.Unlock()
	return &wire.JoinResp{Accept: false, Reason: reason, Code: code}, nil
}

// maxSeekFrames bounds one seek reply regardless of the request.
const maxSeekFrames = 64

// handleSeek serves retained history frames to a rights-holder: the
// same admission checks as a join gate the read, frames come back still
// sealed under their original key iteration, and a request older than
// the retained window is refused with seek_too_deep. Serving history
// never re-encrypts — whether the seeker can *decrypt* what it fetched
// is decided entirely by its own key ring (§IV-E forward secrecy).
func (p *Peer) handleSeek(from simnet.Addr, req *wire.SeekReq) (*wire.SeekResp, error) {
	if _, code, reason := p.admitTicket(from, req.ChannelTicket); code != wire.CodeUnknown {
		return p.rejectSeek(code, reason)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.rejectSeek(wire.CodeDeparting, "peer departing")
	}
	n := len(p.hist)
	if p.cfg.HistoryWindow <= 0 || n == 0 {
		p.mu.Unlock()
		return p.rejectSeek(wire.CodeSeekTooDeep, "no history retained")
	}
	// Oldest-first walk of the circular buffer.
	start := 0
	if p.histFull {
		start = p.histNext
	}
	oldest := p.hist[start].Seq
	newest := p.hist[(start+n-1)%n].Seq
	if req.FromSeq < oldest {
		p.mu.Unlock()
		resp, err := p.rejectSeek(wire.CodeSeekTooDeep,
			fmt.Sprintf("seq %d evicted (oldest retained %d)", req.FromSeq, oldest))
		resp.OldestSeq, resp.NewestSeq = oldest, newest
		return resp, err
	}
	max := int(req.MaxFrames)
	if max <= 0 || max > maxSeekFrames {
		max = maxSeekFrames
	}
	var frames [][]byte
	for i := 0; i < n && len(frames) < max; i++ {
		f := &p.hist[(start+i)%n]
		if f.Seq >= req.FromSeq {
			frames = append(frames, f.Encode())
		}
	}
	p.stats.SeeksServed++
	p.stats.HistoryFramesServed += int64(len(frames))
	p.mu.Unlock()
	return &wire.SeekResp{Accept: true, OldestSeq: oldest, NewestSeq: newest, Frames: frames}, nil
}

func (p *Peer) rejectSeek(code wire.Code, reason string) (*wire.SeekResp, error) {
	p.mu.Lock()
	p.stats.SeeksRejected++
	p.mu.Unlock()
	return &wire.SeekResp{Accept: false, Reason: reason, Code: code}, nil
}

// scheduleEviction severs the peering when the child's ticket lapses
// without renewal (§IV-D).
func (p *Peer) scheduleEviction(addr simnet.Addr, expiry time.Time) {
	s := p.node.Scheduler()
	s.At(expiry.Add(p.cfg.ExpiryGrace), func() {
		now := s.Now()
		p.mu.Lock()
		h, ok := p.children[addr]
		if !ok || now.Before(p.arena.at(h).expiry.Add(p.cfg.ExpiryGrace)) {
			// Gone already, or a renewal pushed the expiry out (a fresh
			// eviction check was scheduled by the renewal).
			p.mu.Unlock()
			return
		}
		p.delChildLocked(addr)
		p.stats.ChildrenEvicted++
		cb := p.cfg.OnChildEvicted
		p.mu.Unlock()
		note := &wire.LeaveNotice{ChannelID: p.cfg.ChannelID}
		p.node.Send(addr, wire.SvcPeerExpire, note.Encode())
		if cb != nil {
			cb(addr)
		}
	})
}

// handleRenewal accepts a renewed Channel Ticket from an existing child
// and extends the peering (§IV-D).
func (p *Peer) handleRenewal(from simnet.Addr, req *wire.RenewalPresent) {
	now := p.node.Scheduler().Now()
	ct, err := p.verifier.VerifyChannel(req.ChannelTicket, p.cfg.ChanMgrKey)
	if err != nil || ct.ValidAt(now) != nil || ct.NetAddr != string(from) ||
		ct.ChannelID != p.cfg.ChannelID {
		return // silently ignore invalid renewals
	}
	p.mu.Lock()
	h, ok := p.children[from]
	if ok {
		if c := p.arena.at(h); ct.Expiry.After(c.expiry) {
			c.expiry = ct.Expiry
		}
	}
	p.mu.Unlock()
	if ok {
		p.scheduleEviction(from, ct.Expiry)
	}
}

// handleLeave removes a departing child.
func (p *Peer) handleLeave(from simnet.Addr, _ *wire.LeaveNotice) {
	p.mu.Lock()
	p.delChildLocked(from)
	p.mu.Unlock()
}

// handlePeerExpire is the client-side notification that a parent severed
// the link.
func (p *Peer) handlePeerExpire(from simnet.Addr, _ *wire.LeaveNotice) {
	p.mu.Lock()
	pr, ok := p.parents[from]
	if ok {
		delete(p.parents, from)
	}
	cb := p.cfg.OnParentLoss
	p.mu.Unlock()
	if ok && cb != nil {
		cb(from, pr.substreams)
	}
}

// --- Joining side -----------------------------------------------------

// JoinParent performs the JOIN round against a candidate parent, asking
// for the given sub-streams. Must run in a simulated goroutine.
func (p *Peer) JoinParent(addr simnet.Addr, substreams []uint8, timeout time.Duration) error {
	return p.JoinParentTraced(wire.TraceCtx{}, addr, substreams, timeout)
}

// JoinParentTraced is JoinParent carrying a causal trace context: the
// JOIN request wears the context's envelope so the parent's runtime can
// emit a server span for the admission decision. A zero context is
// byte-identical to JoinParent.
func (p *Peer) JoinParentTraced(tc wire.TraceCtx, addr simnet.Addr, substreams []uint8, timeout time.Duration) error {
	p.mu.Lock()
	tkt := p.ourTicket
	p.mu.Unlock()
	if len(tkt) == 0 {
		return fmt.Errorf("p2p: no channel ticket set")
	}
	cap := p.cfg.Capacity
	if cap > 0xffff {
		cap = 0xffff
	}
	req := &wire.JoinReq{ChannelTicket: tkt, Substreams: substreams, Capacity: uint16(cap)}
	var t svc.Transport = svc.Plain{Node: p.node, Timeout: timeout}
	if tc.Valid() {
		t = svc.Traced{Inner: t, Ctx: tc}
	}
	resp, err := svc.Invoke(t, addr, wire.SvcJoin, req, wire.DecodeJoinResp)
	if err != nil {
		return fmt.Errorf("join %s: %w", addr, err)
	}
	if !resp.Accept {
		// Wrap the typed refusal so callers can errors.As into
		// *wire.ServiceError and switch on the code.
		return fmt.Errorf("%w by %s: %w", ErrJoinRejected, addr,
			&wire.ServiceError{Code: resp.Code, Msg: resp.Reason})
	}
	sessionBytes, err := p.cfg.Keys.Open(resp.SealedSession)
	if err != nil || len(sessionBytes) != cryptoutil.SymKeySize {
		return fmt.Errorf("join %s: session key: %w", addr, ErrNoSession)
	}
	var session cryptoutil.SymKey
	copy(session[:], sessionBytes)
	sealer := session.Sealer()
	for _, sk := range resp.SealedKeys {
		raw, err := sealer.Open(sk, nil)
		if err != nil {
			continue
		}
		ck, err := keys.DecodeContentKey(raw)
		if err != nil {
			continue
		}
		p.addKey(ck)
	}
	p.mu.Lock()
	p.parents[addr] = &parent{addr: addr, session: sealer, substreams: substreams}
	p.mu.Unlock()
	return nil
}

// SeekHistory fetches retained history frames from a parent (or any
// peer that will admit our Channel Ticket): the time-shift read path.
// Frames come back still sealed; decryptability is decided by this
// peer's own key ring. Must run in a simulated goroutine. On refusal
// the error wraps ErrSeekRejected and a *wire.ServiceError carrying the
// typed code (seek_too_deep, expired_ticket, ...).
func (p *Peer) SeekHistory(addr simnet.Addr, fromSeq uint64, maxFrames int, timeout time.Duration) (*wire.SeekResp, []wire.HistoryFrame, error) {
	p.mu.Lock()
	tkt := p.ourTicket
	p.mu.Unlock()
	if len(tkt) == 0 {
		return nil, nil, fmt.Errorf("p2p: no channel ticket set")
	}
	if maxFrames < 0 || maxFrames > maxSeekFrames {
		maxFrames = maxSeekFrames
	}
	req := &wire.SeekReq{ChannelTicket: tkt, FromSeq: fromSeq, MaxFrames: uint32(maxFrames)}
	t := svc.Plain{Node: p.node, Timeout: timeout}
	resp, err := svc.Invoke(t, addr, wire.SvcSeek, req, wire.DecodeSeekResp)
	if err != nil {
		return nil, nil, fmt.Errorf("seek %s: %w", addr, err)
	}
	if !resp.Accept {
		return resp, nil, fmt.Errorf("%w by %s: %w", ErrSeekRejected, addr,
			&wire.ServiceError{Code: resp.Code, Msg: resp.Reason})
	}
	frames := make([]wire.HistoryFrame, 0, len(resp.Frames))
	for _, blob := range resp.Frames {
		f, err := wire.DecodeHistoryFrame(blob)
		if err != nil {
			continue
		}
		frames = append(frames, *f)
	}
	return resp, frames, nil
}

// OpenHistory decrypts a sealed history frame with this peer's key ring.
// Fails with keys.ErrUnknownSerial when the frame's key iteration has
// slid out of the ring window — the forward-secrecy bound on how deep a
// time-shifted viewer can actually read.
func (p *Peer) OpenHistory(f wire.HistoryFrame) ([]byte, error) {
	if f.Clear {
		return f.Packet, nil
	}
	return keys.OpenPacket(p.ring, f.Packet, []byte(p.cfg.ChannelID))
}

// ParentAddrs returns the current parents sorted by address.
func (p *Peer) ParentAddrs() []simnet.Addr {
	p.mu.Lock()
	addrs := make([]simnet.Addr, 0, len(p.parents))
	for a := range p.parents {
		addrs = append(addrs, a)
	}
	p.mu.Unlock()
	sortAddrs(addrs)
	return addrs
}

// PresentRenewal pushes a renewed Channel Ticket to every parent.
func (p *Peer) PresentRenewal(blob []byte) {
	p.SetTicket(blob)
	msg := &wire.RenewalPresent{ChannelTicket: blob}
	enc := msg.Encode()
	p.mu.Lock()
	addrs := make([]simnet.Addr, 0, len(p.parents))
	for a := range p.parents {
		addrs = append(addrs, a)
	}
	p.mu.Unlock()
	sortAddrs(addrs)
	for _, a := range addrs {
		p.node.Send(a, wire.SvcRenewal, enc)
	}
}

// Leave departs the overlay: parents drop us, children are told to
// re-parent.
func (p *Peer) Leave() {
	note := (&wire.LeaveNotice{ChannelID: p.cfg.ChannelID}).Encode()
	expire := (&wire.LeaveNotice{ChannelID: p.cfg.ChannelID}).Encode()
	p.mu.Lock()
	p.closed = true
	parents := make([]simnet.Addr, 0, len(p.parents))
	for a := range p.parents {
		parents = append(parents, a)
	}
	// Snapshot child addresses before their slots go back to the arena
	// (a recycled slot may be refilled by another peer's join).
	children := make([]simnet.Addr, 0, len(p.kidList))
	for _, h := range p.kidList {
		children = append(children, p.arena.at(h).addr)
	}
	for _, h := range p.kidList {
		p.arena.release(h)
	}
	p.parents = make(map[simnet.Addr]*parent)
	p.children = make(map[simnet.Addr]childHandle)
	p.kidList = nil
	p.arena.releaseSeen(p.seenRing)
	p.seenRing = nil
	p.seenSeq = make(map[uint64]bool)
	p.seenPos = 0
	p.hist = nil
	p.histNext = 0
	p.histFull = false
	p.mu.Unlock()
	sortAddrs(parents)
	for _, a := range parents {
		p.node.Send(a, wire.SvcLeave, note)
	}
	for _, a := range children {
		p.node.Send(a, wire.SvcPeerExpire, expire)
	}
}

// --- Key distribution (§IV-E) ------------------------------------------

// InjectKey enters a fresh content-key iteration at this peer (the
// Channel Server root calls this on every rotation) and forwards it.
func (p *Peer) InjectKey(ck keys.ContentKey) {
	p.addKey(ck)
}

// addKey stores a key iteration and, if new, re-encrypts it for each
// child under the pairwise session key and pushes it on. One rekey
// walks the sorted child list directly and builds each edge's wire
// message in a single exact-size buffer: header framing first, then the
// per-link seal appended in place (the buffer is retained by the
// network until delivery, so it cannot be pooled — one allocation per
// edge is the floor).
func (p *Peer) addKey(ck keys.ContentKey) {
	if !p.ring.Add(ck) {
		p.mu.Lock()
		p.stats.KeysDuplicate++
		p.mu.Unlock()
		return
	}
	if cb := p.cfg.OnKey; cb != nil {
		cb(ck.Serial)
	}
	var rawBuf [keys.ContentKeyLen]byte
	raw := ck.AppendEncode(rawBuf[:0])
	p.mu.Lock()
	p.stats.KeysReceived++
	headerLen := wire.KeyPushHeaderLen(p.cfg.ChannelID)
	forwarded := int64(0)
	for _, h := range p.kidList {
		c := p.arena.at(h)
		sealedLen := c.session.SealedLen(len(raw))
		buf := make([]byte, 0, headerLen+sealedLen)
		buf = wire.AppendKeyPushHeader(buf, p.cfg.ChannelID, sealedLen)
		buf, err := c.session.SealAppend(buf, p.cfg.RNG, raw, nil)
		if err != nil {
			continue
		}
		p.node.Send(c.addr, wire.SvcKeyPush, buf)
		forwarded++
	}
	p.stats.KeysForwarded += forwarded
	p.mu.Unlock()
}

// handleKeyPush receives a content key from a parent, decrypts it with
// the pairwise session key, and relays.
func (p *Peer) handleKeyPush(from simnet.Addr, msg *wire.KeyPush) {
	if msg.ChannelID != p.cfg.ChannelID {
		return
	}
	p.mu.Lock()
	pr, ok := p.parents[from]
	p.mu.Unlock()
	if !ok {
		return // keys only flow down established peerings
	}
	raw, err := pr.session.Open(msg.SealedKey, nil)
	if err != nil {
		return
	}
	ck, err := keys.DecodeContentKey(raw)
	if err != nil {
		return
	}
	p.addKey(ck)
}

// --- Content distribution ----------------------------------------------

// InjectPacket enters an encrypted packet at this peer (the Channel
// Server root calls this for every produced packet).
func (p *Peer) InjectPacket(substream uint8, seq uint64, packet []byte) {
	p.relayPacket(substream, seq, packet, false)
}

// InjectClearPacket enters an unencrypted packet (providers with a
// public mandate may distribute in the clear, §IV-E fn. 2; access is
// still gated by Channel Tickets at join time).
func (p *Peer) InjectClearPacket(substream uint8, seq uint64, packet []byte) {
	p.relayPacket(substream, seq, packet, true)
}

// InjectFrame enters a packet together with its pre-encoded ContentPush
// frame: enc must be the wire encoding of (ChannelID, substream, seq,
// clear, packet), with packet aliasing the frame's tail. The Channel
// Server builds header and sealed payload in one exact-size buffer
// (wire.AppendContentPushHeader + PacketSealer.SealAppend), and the
// relay fan-out then reuses that buffer for every edge instead of
// re-encoding.
func (p *Peer) InjectFrame(substream uint8, seq uint64, packet []byte, clear bool, enc []byte) {
	p.relayFrame(substream, seq, packet, clear, enc)
}

// relayPacket dedups, forwards to subscribed children, and delivers
// locally if configured. The fan-out walks the sorted child list under
// one lock hold — no target-slice collection, no re-sort, one shared
// encoded payload for every edge, stats batched into a single update.
func (p *Peer) relayPacket(substream uint8, seq uint64, packet []byte, clear bool) {
	p.relayFrame(substream, seq, packet, clear, nil)
}

// relayFrame is relayPacket with an optional pre-encoded frame; enc ==
// nil lazily encodes on the first subscribed edge.
func (p *Peer) relayFrame(substream uint8, seq uint64, packet []byte, clear bool, enc []byte) {
	p.mu.Lock()
	if p.closed {
		// Departed: the dedup ring is back in the arena, so late
		// packets are dropped rather than tracked.
		p.mu.Unlock()
		return
	}
	if p.seenSeq[seq] {
		p.stats.PacketsDuplicate++
		p.mu.Unlock()
		return
	}
	p.seenSeq[seq] = true
	if len(p.seenRing) < p.seenWindow {
		if p.seenRing == nil {
			p.seenRing = p.arena.grabSeen(p.seenWindow)
		}
		p.seenRing = append(p.seenRing, seq)
	} else {
		delete(p.seenSeq, p.seenRing[p.seenPos])
		p.seenRing[p.seenPos] = seq
		p.seenPos++
		if p.seenPos == p.seenWindow {
			p.seenPos = 0
		}
	}
	p.stats.PacketsReceived++
	if p.cfg.HistoryWindow > 0 {
		// Retain the sealed frame for time-shift seeks. The packet slice
		// is immutable once on the wire, so aliasing it is safe.
		f := wire.HistoryFrame{Substream: substream, Seq: seq, Clear: clear, Packet: packet}
		if len(p.hist) < p.cfg.HistoryWindow {
			p.hist = append(p.hist, f)
		} else {
			p.hist[p.histNext] = f
			p.histNext++
			if p.histNext == p.cfg.HistoryWindow {
				p.histNext = 0
			}
			p.histFull = true
		}
	}
	forwarded := int64(0)
	for _, h := range p.kidList {
		c := p.arena.at(h)
		if !c.substreams.has(substream) {
			continue
		}
		if enc == nil {
			msg := &wire.ContentPush{
				ChannelID: p.cfg.ChannelID, Substream: substream, Seq: seq,
				Clear: clear, Packet: packet,
			}
			enc = msg.Encode()
		}
		p.node.Send(c.addr, wire.SvcContent, enc)
		forwarded++
	}
	p.stats.PacketsForwarded += forwarded
	deliver := p.cfg.OnPacket
	hijack := p.cfg.OnHijack
	observe := p.cfg.OnDecrypt
	p.mu.Unlock()

	if deliver != nil {
		if clear {
			p.mu.Lock()
			p.stats.PacketsDelivered++
			p.mu.Unlock()
			deliver(seq, packet)
			return
		}
		payload, err := keys.OpenPacket(p.ring, packet, []byte(p.cfg.ChannelID))
		if observe != nil && len(packet) > 0 {
			observe(keys.Serial(packet[0]), seq, err)
		}
		if err != nil {
			p.mu.Lock()
			p.stats.PacketsUndecrypt++
			p.mu.Unlock()
			if hijack != nil && errors.Is(err, keys.ErrHijack) {
				hijack(seq, err)
			}
			return
		}
		p.mu.Lock()
		p.stats.PacketsDelivered++
		p.mu.Unlock()
		deliver(seq, payload)
	}
}

// handleContent receives a packet from a parent and relays it.
func (p *Peer) handleContent(from simnet.Addr, msg *wire.ContentPush) {
	if msg.ChannelID != p.cfg.ChannelID {
		return
	}
	p.mu.Lock()
	_, ok := p.parents[from]
	p.mu.Unlock()
	if !ok {
		return // content only flows down established peerings
	}
	p.relayPacket(msg.Substream, msg.Seq, msg.Packet, msg.Clear)
}
