package p2p

import "sync"

// Child-slab geometry: handles index fixed-size chunks so a chunk, once
// published, never moves — a handle can be dereferenced without taking
// the arena lock (the handle only reaches a reader through the owning
// peer's mutex, which orders the deref after the chunk's publication).
const (
	arenaChunkShift = 8 // 256 children per chunk
	arenaChunkSize  = 1 << arenaChunkShift
	arenaChunkMask  = arenaChunkSize - 1
)

// childHandle indexes a child slot inside an Arena. Handles are dense
// small integers: the per-peer child list is a flat []childHandle
// instead of a slice of heap pointers.
type childHandle int32

// Arena backs the hot per-child state of a set of peers with flat slabs:
// child records live in fixed-size chunks addressed by integer handles
// (with a free list for reuse), and packet-dedup rings are carved from
// shared uint64 blocks. One arena serves all peers of one scheduler
// lane — peers on the same lane never run concurrently, and the arena's
// own mutex covers the cross-peer alloc/free paths, so a System (or one
// shard of a sharded run) shares a single arena across its whole overlay.
type Arena struct {
	mu     sync.Mutex
	chunks [][]child     // fixed-length table; entries filled lazily
	free   []childHandle // recycled slots
	next   int32         // first never-used handle
	live   int           // allocated and not freed

	seenSlab []uint64            // current block rings are carved from
	seenOff  int                 // carve position in seenSlab
	seenFree map[int][][]uint64  // released rings, keyed by capacity
}

// arenaDefaultCap is the private-arena child capacity (a standalone peer
// with no shared arena rarely exceeds its MaxChildren).
const arenaDefaultCap = 4 * arenaChunkSize

// NewArena creates an arena sized for about `capacity` children
// (rounded up to whole chunks; ≤ 0 uses a small default). The chunk
// table is fixed at creation: exceeding it panics, so size shared arenas
// for the deployment's total child-edge count.
func NewArena(capacity int) *Arena {
	if capacity <= 0 {
		capacity = arenaDefaultCap
	}
	nChunks := (capacity + arenaChunkSize - 1) >> arenaChunkShift
	return &Arena{
		chunks:   make([][]child, nChunks),
		seenFree: make(map[int][][]uint64),
	}
}

// Cap reports the handle-space capacity in children.
func (a *Arena) Cap() int { return len(a.chunks) << arenaChunkShift }

// Live reports currently allocated child slots.
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// alloc grabs a child slot, reusing freed slots before extending.
func (a *Arena) alloc() childHandle {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.live++
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		return h
	}
	h := childHandle(a.next)
	ci := int(h) >> arenaChunkShift
	if ci >= len(a.chunks) {
		panic("p2p: arena child capacity exhausted")
	}
	if a.chunks[ci] == nil {
		a.chunks[ci] = make([]child, arenaChunkSize)
	}
	a.next++
	return h
}

// release returns a slot to the free list, zeroing it so the session
// AEAD and ticket references are collectable.
func (a *Arena) release(h childHandle) {
	a.mu.Lock()
	defer a.mu.Unlock()
	*a.at(h) = child{}
	a.free = append(a.free, h)
	a.live--
}

// at dereferences a handle. Lock-free: chunks never move once published
// and the handle's owner serializes access to the slot.
func (a *Arena) at(h childHandle) *child {
	return &a.chunks[int(h)>>arenaChunkShift][int(h)&arenaChunkMask]
}

// grabSeen hands out a zero-length dedup ring with exactly `window`
// capacity, carved from a shared block. The caller appends up to window
// entries (never past capacity, so the append stays in place) and may
// return the ring with releaseSeen when the peer departs.
func (a *Arena) grabSeen(window int) []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rings := a.seenFree[window]; len(rings) > 0 {
		r := rings[len(rings)-1]
		a.seenFree[window] = rings[:len(rings)-1]
		return r[:0]
	}
	if a.seenOff+window > len(a.seenSlab) {
		block := 8 * window
		if block < 1<<15 {
			block = 1 << 15
		}
		a.seenSlab = make([]uint64, block)
		a.seenOff = 0
	}
	r := a.seenSlab[a.seenOff : a.seenOff : a.seenOff+window]
	a.seenOff += window
	return r
}

// releaseSeen recycles a departing peer's dedup ring.
func (a *Arena) releaseSeen(ring []uint64) {
	if cap(ring) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seenFree[cap(ring)] = append(a.seenFree[cap(ring)], ring)
}
