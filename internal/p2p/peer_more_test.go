package p2p

import (
	"testing"
	"time"

	"p2pdrm/internal/cryptoutil"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/keys"
	"p2pdrm/internal/ticket"
	"p2pdrm/internal/wire"
)

func TestRenewalFromStrangerIgnored(t *testing.T) {
	// Only an existing child's peering can be extended: a stranger
	// presenting a valid renewal ticket gains nothing.
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	strangerAddr := geo.Addr(100, 1, 77)
	strangerNode := f.net.NewNode(strangerAddr)
	kp, _ := cryptoutil.NewKeyPair(f.rng)
	blob := f.mintTicket(kp, strangerAddr, "chA", time.Hour)
	msg := &wire.RenewalPresent{ChannelTicket: blob}
	strangerNode.Send("root", wire.SvcRenewal, msg.Encode())
	f.sched.RunUntil(t0.Add(time.Minute))
	if root.Children() != 0 {
		t.Fatal("stranger's renewal created a child")
	}
}

func TestRenewalWithInvalidTicketIgnored(t *testing.T) {
	// A child presenting a forged renewal does not extend its peering.
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", 5*time.Minute))
	f.sched.Go(func() {
		if err := cli.JoinParent("root", nil, 0); err != nil {
			t.Errorf("join: %v", err)
			return
		}
		f.sched.Sleep(4 * time.Minute)
		// Forged renewal: self-signed by a rogue key.
		rogue, _ := cryptoutil.NewKeyPair(cryptoutil.NewSeededReader(5))
		forged := ticket.SignChannel(&ticket.ChannelTicket{
			UserIN: 7, ChannelID: "chA", NetAddr: string(addr),
			ClientKey: kp.Public(), Start: f.sched.Now(),
			Expiry: f.sched.Now().Add(time.Hour), Renewal: true,
		}, rogue)
		cli.PresentRenewal(forged)
	})
	f.sched.RunUntil(t0.Add(10 * time.Minute))
	if root.Children() != 0 {
		t.Fatal("forged renewal kept the peering alive past expiry")
	}
}

func TestKeyPushWrongChannelIgnored(t *testing.T) {
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Hour))
	f.sched.Go(func() {
		if err := cli.JoinParent("root", nil, 0); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	f.sched.RunUntil(t0.Add(time.Minute))
	// The parent pushes a key labeled for a DIFFERENT channel: ignored.
	sched, _ := keys.NewSchedule(f.rng)
	ck := sched.Current()
	// Build the push by hand as the root peer would, but mislabel it.
	root.mu.Lock()
	var session *cryptoutil.SealKey
	for _, h := range root.children {
		session = root.arena.at(h).session
	}
	root.mu.Unlock()
	sealed, _ := session.Seal(f.rng, ck.Encode(), nil)
	msg := &wire.KeyPush{ChannelID: "chOTHER", SealedKey: sealed}
	root.Node().Send(addr, wire.SvcKeyPush, msg.Encode())
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if cli.Ring().Len() != 0 {
		t.Fatal("mislabeled key push was accepted")
	}
}

func TestLeaveIsIdempotent(t *testing.T) {
	f := newFixture(t)
	_, mid, _ := buildChain(t, f, nil)
	mid.Leave()
	mid.Leave() // second leave must not panic or resurrect state
	f.sched.RunUntil(t0.Add(time.Minute))
	if mid.Parents() != 0 || mid.Children() != 0 {
		t.Fatal("state after double leave")
	}
}

func TestClosedPeerRejectsJoins(t *testing.T) {
	f := newFixture(t)
	leaving, _ := f.newPeer(t, "root", nil)
	leaving.Leave()
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Hour))
	var jerr error
	f.sched.Go(func() { jerr = cli.JoinParent("root", nil, 0) })
	f.sched.RunUntil(t0.Add(time.Minute))
	if jerr == nil {
		t.Fatal("departing peer accepted a join")
	}
}
