package p2p

import (
	"errors"
	"testing"
	"time"

	"p2pdrm/internal/cryptoutil"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/keys"
	"p2pdrm/internal/sim"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/ticket"
	"p2pdrm/internal/wire"
)

var t0 = time.Date(2008, 6, 23, 20, 0, 0, 0, time.UTC)

type fixture struct {
	sched  *sim.Scheduler
	net    *simnet.Network
	cmKeys *cryptoutil.KeyPair
	rng    *cryptoutil.SeededReader
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := sim.New(t0, 1)
	net := simnet.New(s, simnet.WithLatency(simnet.UniformLatency{Base: 5 * time.Millisecond}))
	rng := cryptoutil.NewSeededReader(11)
	cmKeys, _ := cryptoutil.NewKeyPair(rng)
	return &fixture{sched: s, net: net, cmKeys: cmKeys, rng: rng}
}

// newPeer builds a peer at addr with its own identity keys.
func (f *fixture) newPeer(t *testing.T, addr simnet.Addr, mut func(*Config)) (*Peer, *cryptoutil.KeyPair) {
	t.Helper()
	kp, _ := cryptoutil.NewKeyPair(f.rng)
	cfg := Config{
		ChannelID:  "chA",
		ChanMgrKey: f.cmKeys.Public(),
		Keys:       kp,
		RNG:        f.rng,
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPeer(f.net.NewNode(addr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, kp
}

// mintTicket signs a Channel Ticket as the Channel Manager would.
func (f *fixture) mintTicket(kp *cryptoutil.KeyPair, addr simnet.Addr, channelID string, lifetime time.Duration) []byte {
	ct := &ticket.ChannelTicket{
		UserIN:    7,
		ChannelID: channelID,
		NetAddr:   string(addr),
		ClientKey: kp.Public(),
		Start:     f.sched.Now(),
		Expiry:    f.sched.Now().Add(lifetime),
	}
	return ticket.SignChannel(ct, f.cmKeys)
}

func TestJoinHappyPathDeliversSessionAndKeys(t *testing.T) {
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	sched, _ := keys.NewSchedule(f.rng)
	root.InjectKey(sched.Current())

	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", 10*time.Minute))
	var jerr error
	f.sched.Go(func() { jerr = cli.JoinParent("root", nil, 0) })
	f.sched.RunUntil(t0.Add(time.Minute))
	if jerr != nil {
		t.Fatal(jerr)
	}
	if cli.Parents() != 1 || root.Children() != 1 {
		t.Fatalf("parents=%d children=%d", cli.Parents(), root.Children())
	}
	// The current content key arrived sealed under the session key.
	if cli.Ring().Len() != 1 {
		t.Fatalf("client ring has %d keys, want 1", cli.Ring().Len())
	}
	if got, _ := cli.Ring().Latest(); got != sched.Current() {
		t.Fatal("client's key differs from the schedule's")
	}
}

func TestJoinRejectedForForgedTicket(t *testing.T) {
	f := newFixture(t)
	f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	rogue, _ := cryptoutil.NewKeyPair(f.rng)
	ct := &ticket.ChannelTicket{
		UserIN: 7, ChannelID: "chA", NetAddr: string(addr),
		ClientKey: kp.Public(), Start: t0, Expiry: t0.Add(time.Hour),
	}
	cli.SetTicket(ticket.SignChannel(ct, rogue)) // signed by the wrong CM
	var jerr error
	f.sched.Go(func() { jerr = cli.JoinParent("root", nil, 0) })
	f.sched.RunUntil(t0.Add(time.Minute))
	if !errors.Is(jerr, ErrJoinRejected) {
		t.Fatalf("err = %v, want ErrJoinRejected", jerr)
	}
}

func TestJoinRejectedExpiredTicket(t *testing.T) {
	f := newFixture(t)
	f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Minute))
	var jerr error
	f.sched.Go(func() {
		f.sched.Sleep(2 * time.Minute)
		jerr = cli.JoinParent("root", nil, 0)
	})
	f.sched.RunUntil(t0.Add(10 * time.Minute))
	if !errors.Is(jerr, ErrJoinRejected) {
		t.Fatalf("err = %v, want ErrJoinRejected", jerr)
	}
}

func TestJoinRejectedNetAddrMismatch(t *testing.T) {
	// A captured Channel Ticket presented from another address fails.
	f := newFixture(t)
	f.newPeer(t, "root", nil)
	victim := geo.Addr(100, 1, 1)
	attackerAddr := geo.Addr(100, 1, 66)
	attacker, kp := f.newPeer(t, attackerAddr, nil)
	attacker.SetTicket(f.mintTicket(kp, victim, "chA", time.Hour))
	var jerr error
	f.sched.Go(func() { jerr = attacker.JoinParent("root", nil, 0) })
	f.sched.RunUntil(t0.Add(time.Minute))
	if !errors.Is(jerr, ErrJoinRejected) {
		t.Fatalf("err = %v, want ErrJoinRejected", jerr)
	}
}

func TestJoinRejectedWrongChannel(t *testing.T) {
	f := newFixture(t)
	f.newPeer(t, "root", nil) // carries chA
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chOTHER", time.Hour))
	var jerr error
	f.sched.Go(func() { jerr = cli.JoinParent("root", nil, 0) })
	f.sched.RunUntil(t0.Add(time.Minute))
	if !errors.Is(jerr, ErrJoinRejected) {
		t.Fatalf("err = %v, want ErrJoinRejected", jerr)
	}
}

func TestJoinRejectedAtCapacity(t *testing.T) {
	f := newFixture(t)
	f.newPeer(t, "root", func(c *Config) { c.MaxChildren = 1 })
	var errs [2]error
	for i := 0; i < 2; i++ {
		addr := geo.Addr(100, 1, i+1)
		cli, kp := f.newPeer(t, addr, nil)
		cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Hour))
		i := i
		delay := time.Duration(i) * time.Second
		f.sched.Go(func() {
			f.sched.Sleep(delay)
			errs[i] = cli.JoinParent("root", nil, 0)
		})
	}
	f.sched.RunUntil(t0.Add(time.Minute))
	if errs[0] != nil {
		t.Fatalf("first join failed: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrJoinRejected) {
		t.Fatalf("second join err = %v, want ErrJoinRejected (capacity)", errs[1])
	}
}

// buildChain creates root ← mid ← leaf, all joined, and returns them.
func buildChain(t *testing.T, f *fixture, leafCfg func(*Config)) (root, mid, leaf *Peer) {
	t.Helper()
	root, _ = f.newPeer(t, "root", nil)
	midAddr := geo.Addr(100, 1, 1)
	leafAddr := geo.Addr(100, 1, 2)
	mid, midKP := f.newPeer(t, midAddr, nil)
	leaf, leafKP := f.newPeer(t, leafAddr, leafCfg)
	mid.SetTicket(f.mintTicket(midKP, midAddr, "chA", time.Hour))
	leaf.SetTicket(f.mintTicket(leafKP, leafAddr, "chA", time.Hour))
	var e1, e2 error
	f.sched.Go(func() {
		e1 = mid.JoinParent("root", nil, 0)
		e2 = leaf.JoinParent(midAddr, nil, 0)
	})
	f.sched.RunUntil(t0.Add(time.Minute))
	if e1 != nil || e2 != nil {
		t.Fatalf("chain join: %v %v", e1, e2)
	}
	return root, mid, leaf
}

func TestKeyPropagatesDownTree(t *testing.T) {
	f := newFixture(t)
	root, mid, leaf := buildChain(t, f, nil)
	sched, _ := keys.NewSchedule(f.rng)
	ck, _ := sched.Rotate()
	root.InjectKey(ck)
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if _, ok := mid.Ring().Get(ck.Serial); !ok {
		t.Fatal("mid peer missing rotated key")
	}
	if _, ok := leaf.Ring().Get(ck.Serial); !ok {
		t.Fatal("leaf peer missing rotated key (tree relay broken)")
	}
}

func TestContentFlowsAndDecryptsAtLeaf(t *testing.T) {
	f := newFixture(t)
	var got [][]byte
	root, _, leaf := buildChain(t, f, func(c *Config) {
		c.OnPacket = func(_ uint64, payload []byte) { got = append(got, payload) }
	})
	sched, _ := keys.NewSchedule(f.rng)
	ck := sched.Current()
	root.InjectKey(ck)
	f.sched.RunUntil(t0.Add(time.Minute))
	pkt, err := keys.SealPacket(f.rng, ck, []byte("frame-1"), []byte("chA"))
	if err != nil {
		t.Fatal(err)
	}
	root.InjectPacket(0, 1, pkt)
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if len(got) != 1 || string(got[0]) != "frame-1" {
		t.Fatalf("leaf delivered %q", got)
	}
	if leaf.Stats().PacketsDelivered != 1 {
		t.Fatalf("stats = %+v", leaf.Stats())
	}
}

func TestDuplicateKeysAndPacketsDiscarded(t *testing.T) {
	f := newFixture(t)
	root, mid, _ := buildChain(t, f, nil)
	sched, _ := keys.NewSchedule(f.rng)
	ck, _ := sched.Rotate()
	root.InjectKey(ck)
	root.InjectKey(ck) // duplicate injection
	pkt, _ := keys.SealPacket(f.rng, ck, []byte("x"), []byte("chA"))
	root.InjectPacket(0, 5, pkt)
	root.InjectPacket(0, 5, pkt)
	f.sched.RunUntil(t0.Add(time.Minute))
	st := mid.Stats()
	if st.KeysReceived != 1 {
		t.Fatalf("mid KeysReceived = %d, want 1", st.KeysReceived)
	}
	if st.PacketsReceived != 1 {
		t.Fatalf("mid PacketsReceived = %d, want 1", st.PacketsReceived)
	}
	if root.Stats().PacketsDuplicate != 1 || root.Stats().KeysDuplicate != 1 {
		t.Fatalf("root stats = %+v", root.Stats())
	}
}

func TestChildEvictedOnTicketExpiryWithoutRenewal(t *testing.T) {
	// §IV-D: "a peer will terminate a peering relationship whose Channel
	// Ticket has expired if a renewal ticket is not presented."
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	var lost []simnet.Addr
	cli, kp := f.newPeer(t, addr, func(c *Config) {
		c.OnParentLoss = func(p simnet.Addr, _ []uint8) { lost = append(lost, p) }
	})
	cli.SetTicket(f.mintTicket(kp, addr, "chA", 5*time.Minute))
	f.sched.Go(func() {
		if err := cli.JoinParent("root", nil, 0); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	f.sched.RunUntil(t0.Add(10 * time.Minute))
	if root.Children() != 0 {
		t.Fatal("expired child not evicted")
	}
	if root.Stats().ChildrenEvicted != 1 {
		t.Fatalf("stats = %+v", root.Stats())
	}
	if len(lost) != 1 || lost[0] != "root" {
		t.Fatalf("client not notified of severed peering: %v", lost)
	}
}

func TestRenewalKeepsPeeringAlive(t *testing.T) {
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", 5*time.Minute))
	f.sched.Go(func() {
		if err := cli.JoinParent("root", nil, 0); err != nil {
			t.Errorf("join: %v", err)
			return
		}
		f.sched.Sleep(4 * time.Minute)
		// Present a renewed ticket (as issued by the Channel Manager).
		renewed := f.mintTicket(kp, addr, "chA", 10*time.Minute)
		cli.PresentRenewal(renewed)
	})
	f.sched.RunUntil(t0.Add(8 * time.Minute))
	if root.Children() != 1 {
		t.Fatal("renewed child was evicted")
	}
	f.sched.RunUntil(t0.Add(30 * time.Minute))
	if root.Children() != 0 {
		t.Fatal("child not evicted after renewed ticket finally lapsed")
	}
}

func TestLeaveNotifiesBothSides(t *testing.T) {
	f := newFixture(t)
	root, mid, leaf := buildChain(t, f, nil)
	var leafLost bool
	// Rewire leaf's callback via a new join is complex; instead verify
	// state counts after mid departs.
	_ = leafLost
	mid.Leave()
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if root.Children() != 0 {
		t.Fatal("root still lists departed child")
	}
	if leaf.Parents() != 0 {
		t.Fatal("leaf still lists departed parent")
	}
}

func TestContentFromStrangerIgnored(t *testing.T) {
	// Content only flows down established peerings: a stranger pushing
	// packets is ignored (defense against rogue injection, §IV-E).
	f := newFixture(t)
	var got int
	addr := geo.Addr(100, 1, 1)
	cli, _ := f.newPeer(t, addr, func(c *Config) {
		c.OnPacket = func(uint64, []byte) { got++ }
	})
	_ = cli
	stranger := f.net.NewNode("stranger")
	msg := &wire.ContentPush{ChannelID: "chA", Substream: 0, Seq: 1, Packet: []byte{1, 2, 3}}
	stranger.Send(addr, wire.SvcContent, msg.Encode())
	f.sched.RunUntil(t0.Add(time.Minute))
	if got != 0 {
		t.Fatal("stranger's packet was processed")
	}
}

func TestHijackedContentDetected(t *testing.T) {
	// A parent relaying tampered packets trips GCM authentication.
	f := newFixture(t)
	var hijacks int
	root, _, leaf := buildChain(t, f, func(c *Config) {
		c.OnPacket = func(uint64, []byte) {}
		c.OnHijack = func(uint64, error) { hijacks++ }
	})
	sched, _ := keys.NewSchedule(f.rng)
	ck := sched.Current()
	root.InjectKey(ck)
	f.sched.RunUntil(t0.Add(time.Minute))
	pkt, _ := keys.SealPacket(f.rng, ck, []byte("legit"), []byte("chA"))
	pkt[len(pkt)-1] ^= 1 // rogue content masquerading as legitimate
	root.InjectPacket(0, 9, pkt)
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if hijacks != 1 {
		t.Fatalf("hijacks = %d, want 1", hijacks)
	}
	if leaf.Stats().PacketsUndecrypt != 1 {
		t.Fatalf("stats = %+v", leaf.Stats())
	}
}

func TestMultiParentSubstreamSplit(t *testing.T) {
	// The client draws substreams 0,1 from parent A and 2,3 from parent
	// B; packets on every substream arrive exactly once.
	f := newFixture(t)
	rootA, _ := f.newPeer(t, "rootA", nil)
	rootB, _ := f.newPeer(t, "rootB", nil)
	sched, _ := keys.NewSchedule(f.rng)
	ck := sched.Current()
	rootA.InjectKey(ck)
	rootB.InjectKey(ck)

	addr := geo.Addr(100, 1, 1)
	var seqs []uint64
	cli, kp := f.newPeer(t, addr, func(c *Config) {
		c.OnPacket = func(seq uint64, _ []byte) { seqs = append(seqs, seq) }
	})
	cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Hour))
	f.sched.Go(func() {
		if err := cli.JoinParent("rootA", []uint8{0, 1}, 0); err != nil {
			t.Errorf("joinA: %v", err)
		}
		if err := cli.JoinParent("rootB", []uint8{2, 3}, 0); err != nil {
			t.Errorf("joinB: %v", err)
		}
	})
	f.sched.RunUntil(t0.Add(time.Minute))
	for seq := uint64(0); seq < 8; seq++ {
		sub := uint8(seq % 4)
		pkt, _ := keys.SealPacket(f.rng, ck, []byte{byte(seq)}, []byte("chA"))
		// Both roots carry the full stream; each child only gets its
		// subscribed substreams.
		rootA.InjectPacket(sub, seq, pkt)
		pkt2, _ := keys.SealPacket(f.rng, ck, []byte{byte(seq)}, []byte("chA"))
		rootB.InjectPacket(sub, seq, pkt2)
	}
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if len(seqs) != 8 {
		t.Fatalf("delivered %d packets (%v), want 8 exactly once each", len(seqs), seqs)
	}
	seen := map[uint64]bool{}
	for _, s := range seqs {
		if seen[s] {
			t.Fatalf("seq %d delivered twice", s)
		}
		seen[s] = true
	}
}

func TestEavesdropperCannotUseKeyPush(t *testing.T) {
	// An eavesdropper receiving the KeyPush bytes cannot recover the
	// content key without the pairwise session key.
	f := newFixture(t)
	root, _ := f.newPeer(t, "root", nil)
	addr := geo.Addr(100, 1, 1)
	cli, kp := f.newPeer(t, addr, nil)
	cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Hour))
	eveAddr := geo.Addr(100, 1, 99)
	eve, _ := f.newPeer(t, eveAddr, nil)
	f.sched.Go(func() {
		if err := cli.JoinParent("root", nil, 0); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	f.sched.RunUntil(t0.Add(time.Minute))
	sched, _ := keys.NewSchedule(f.rng)
	ck, _ := sched.Rotate()
	root.InjectKey(ck)
	f.sched.RunUntil(t0.Add(2 * time.Minute))
	if eve.Ring().Len() != 0 {
		t.Fatal("eavesdropper obtained a content key")
	}
	if cli.Ring().Len() == 0 {
		t.Fatal("legitimate client missing the key")
	}
}

func TestNewPeerValidatesConfig(t *testing.T) {
	f := newFixture(t)
	if _, err := NewPeer(f.net.NewNode("x"), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
