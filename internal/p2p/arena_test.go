package p2p

import (
	"testing"
	"time"

	"p2pdrm/internal/geo"
	"p2pdrm/internal/simnet"
)

func TestArenaAllocReuseAndStability(t *testing.T) {
	a := NewArena(3 * arenaChunkSize)
	if got := a.Cap(); got != 3*arenaChunkSize {
		t.Fatalf("Cap() = %d, want %d", got, 3*arenaChunkSize)
	}
	// Fill past one chunk so the table grows; pointers taken early must
	// stay valid.
	h0 := a.alloc()
	a.at(h0).addr = "first"
	p0 := a.at(h0)
	handles := []childHandle{h0}
	for i := 1; i < arenaChunkSize+10; i++ {
		handles = append(handles, a.alloc())
	}
	if a.Live() != len(handles) {
		t.Fatalf("Live() = %d, want %d", a.Live(), len(handles))
	}
	if a.at(h0) != p0 || p0.addr != "first" {
		t.Fatal("chunk moved: early pointer invalidated by growth")
	}
	// Freed slots come back (and come back zeroed).
	a.release(handles[5])
	if p := a.at(handles[5]); p.addr != "" {
		t.Fatal("released slot not zeroed")
	}
	if h := a.alloc(); h != handles[5] {
		t.Fatalf("alloc after release = %d, want recycled %d", h, handles[5])
	}
	if a.Live() != len(handles) {
		t.Fatalf("Live() after recycle = %d, want %d", a.Live(), len(handles))
	}
}

func TestArenaCapacityPanics(t *testing.T) {
	a := NewArena(arenaChunkSize)
	for i := 0; i < arenaChunkSize; i++ {
		a.alloc()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("alloc past capacity did not panic")
		}
	}()
	a.alloc()
}

func TestArenaSeenRings(t *testing.T) {
	a := NewArena(0)
	r1 := a.grabSeen(64)
	if len(r1) != 0 || cap(r1) != 64 {
		t.Fatalf("grabSeen: len=%d cap=%d, want 0/64", len(r1), cap(r1))
	}
	r2 := a.grabSeen(64)
	// Distinct carves from one slab must not alias.
	r1 = append(r1[:0], make([]uint64, 64)...)
	r2 = append(r2[:0], make([]uint64, 64)...)
	r1[63] = 7
	if r2[0] == 7 || r2[63] == 7 {
		t.Fatal("seen rings alias")
	}
	// A released ring is handed out again for the same window.
	a.releaseSeen(r1)
	r3 := a.grabSeen(64)
	if &r3[:1][0] != &r1[:1][0] {
		t.Fatal("released ring was not recycled")
	}
	// A window larger than the remaining slab forces a fresh block.
	big := a.grabSeen(1 << 16)
	if cap(big) != 1<<16 {
		t.Fatalf("large grab cap = %d", cap(big))
	}
}

// TestArenaSharedAcrossPeers pins the deployment shape: two relays file
// children in one arena; one departing releases its slots for reuse
// without disturbing the other's children.
func TestArenaSharedAcrossPeers(t *testing.T) {
	f := newFixture(t)
	arena := NewArena(0)
	share := func(c *Config) { c.Arena = arena }
	rootA, _ := f.newPeer(t, "rootA", share)
	rootB, _ := f.newPeer(t, "rootB", share)
	join := func(root simnet.Addr, host int) {
		addr := geo.Addr(100, 2, host)
		cli, kp := f.newPeer(t, addr, nil)
		cli.SetTicket(f.mintTicket(kp, addr, "chA", time.Hour))
		f.sched.Go(func() {
			if err := cli.JoinParent(root, nil, 0); err != nil {
				t.Errorf("join: %v", err)
			}
		})
	}
	join("rootA", 1)
	join("rootA", 2)
	join("rootB", 3)
	f.sched.RunUntil(f.sched.Now().Add(time.Minute))
	if arena.Live() != 3 {
		t.Fatalf("arena holds %d children, want 3", arena.Live())
	}
	rootA.Leave()
	f.sched.RunUntil(f.sched.Now().Add(time.Minute))
	if arena.Live() != 1 {
		t.Fatalf("after Leave arena holds %d children, want 1", arena.Live())
	}
	if rootB.Children() != 1 {
		t.Fatal("rootB lost its child to rootA's departure")
	}
	// rootB's surviving child must still be reachable through its handle.
	rootB.mu.Lock()
	for _, h := range rootB.kidList {
		if got := arena.at(h).addr; got != geo.Addr(100, 2, 3) {
			t.Fatalf("surviving child addr = %s", got)
		}
	}
	rootB.mu.Unlock()
}
