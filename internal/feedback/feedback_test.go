package feedback

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2008, 6, 23, 0, 0, 0, 0, time.UTC)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestRoundStrings(t *testing.T) {
	want := map[Round]string{
		Login1: "LOGIN1", Login2: "LOGIN2", Switch1: "SWITCH1",
		Switch2: "SWITCH2", Join: "JOIN",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if Round(99).String() == "" {
		t.Fatal("unknown round empty")
	}
}

func TestLogRecordAndSubmit(t *testing.T) {
	l := NewLog()
	l.Record(Login1, t0, ms(100), true)
	l.Record(Login2, t0.Add(time.Second), ms(150), true)
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	c := NewCorpus()
	c.Submit(l)
	if c.Logs() != 1 || c.Len() != 2 {
		t.Fatalf("corpus logs=%d len=%d", c.Logs(), c.Len())
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median != 0")
	}
	if got := Median([]time.Duration{ms(30), ms(10), ms(20)}); got != ms(20) {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]time.Duration{ms(10), ms(20), ms(30), ms(40)}); got != ms(25) {
		t.Fatalf("even median = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	d := []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}
	if got := Quantile(d, 0.5); got != ms(30) {
		t.Fatalf("p50 = %v", got)
	}
	if got := Quantile(d, 1.0); got != ms(50) {
		t.Fatalf("p100 = %v", got)
	}
	if got := Quantile(d, 0.0); got != ms(10) {
		t.Fatalf("p0 = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
}

func TestHourlyBuckets(t *testing.T) {
	c := NewCorpus()
	l := NewLog()
	// Hour 0: 100, 200ms. Hour 1: 300ms. Failure samples excluded.
	l.Record(Login1, t0.Add(10*time.Minute), ms(100), true)
	l.Record(Login1, t0.Add(20*time.Minute), ms(200), true)
	l.Record(Login1, t0.Add(70*time.Minute), ms(300), true)
	l.Record(Login1, t0.Add(30*time.Minute), ms(9999), false)
	l.Record(Switch1, t0.Add(30*time.Minute), ms(1), true) // other round
	c.Submit(l)
	c.RecordUsers(t0.Add(15*time.Minute), 100)
	c.RecordUsers(t0.Add(45*time.Minute), 200)
	c.RecordUsers(t0.Add(75*time.Minute), 50)

	pts := c.Hourly(Login1, t0, 3)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Median != ms(150) || pts[0].Samples != 2 {
		t.Fatalf("hour 0 = %+v", pts[0])
	}
	if pts[0].Users != 150 {
		t.Fatalf("hour 0 users = %v", pts[0].Users)
	}
	if pts[1].Median != ms(300) || pts[1].Users != 50 {
		t.Fatalf("hour 1 = %+v", pts[1])
	}
	if pts[2].Samples != 0 || pts[2].Median != 0 {
		t.Fatalf("empty hour 2 = %+v", pts[2])
	}
}

func TestLatenciesPeakSplit(t *testing.T) {
	c := NewCorpus()
	l := NewLog()
	l.Record(Join, t0.Add(19*time.Hour), ms(100), true)              // peak (19h)
	l.Record(Join, t0.Add(26*time.Hour), ms(200), true)              // day 2, 02h off-peak
	l.Record(Join, t0.Add(24*time.Hour+20*time.Hour), ms(300), true) // day 2, 20h peak
	c.Submit(l)
	peak := c.Latencies(Join, t0, 18, 24)
	off := c.Latencies(Join, t0, 0, 18)
	if len(peak) != 2 || len(off) != 1 {
		t.Fatalf("peak=%d off=%d", len(peak), len(off))
	}
}

func TestCDF(t *testing.T) {
	d := []time.Duration{ms(100), ms(200), ms(300), ms(400)}
	pts := CDF(d, ms(400), 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 0 || pts[0].P != 0 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[4].X != ms(400) || pts[4].P != 1 {
		t.Fatalf("last point = %+v", pts[4])
	}
	if pts[2].P != 0.5 { // x=200ms → two of four ≤
		t.Fatalf("mid point = %+v", pts[2])
	}
}

func TestCDFEmpty(t *testing.T) {
	pts := CDF(nil, ms(100), 3)
	for _, p := range pts {
		if p.P != 0 {
			t.Fatalf("empty CDF nonzero: %+v", p)
		}
	}
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, yPos); math.Abs(r-1) > 1e-9 {
		t.Fatalf("perfect positive r = %v", r)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yNeg); math.Abs(r+1) > 1e-9 {
		t.Fatalf("perfect negative r = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Pearson(x, flat); r != 0 {
		t.Fatalf("zero-variance r = %v", r)
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("short input r != 0")
	}
}

func TestPearsonHourlySkipsEmptyHours(t *testing.T) {
	pts := []HourlyPoint{
		{Hour: 0, Median: ms(100), Samples: 10, Users: 1000},
		{Hour: 1, Median: 0, Samples: 0, Users: 2000}, // empty hour skipped
		{Hour: 2, Median: ms(100), Samples: 10, Users: 3000},
		{Hour: 3, Median: ms(101), Samples: 10, Users: 1500},
	}
	r := PearsonHourly(pts)
	if math.Abs(r) > 0.9 {
		t.Fatalf("near-flat latency should correlate weakly, r = %v", r)
	}
}

func TestMaxAbsCDFGap(t *testing.T) {
	a := []CDFPoint{{0, 0}, {ms(100), 0.5}, {ms(200), 1}}
	b := []CDFPoint{{0, 0}, {ms(100), 0.6}, {ms(200), 1}}
	if g := MaxAbsCDFGap(a, b); math.Abs(g-0.1) > 1e-9 {
		t.Fatalf("gap = %v, want 0.1", g)
	}
	if g := MaxAbsCDFGap(a, a); g != 0 {
		t.Fatalf("self gap = %v", g)
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := xs[:n], ys[:n]
		for _, v := range append(append([]float64{}, x...), y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true // skip pathological float inputs
			}
		}
		r1, r2 := Pearson(x, y), Pearson(y, x)
		if math.Abs(r1-r2) > 1e-9 {
			return false
		}
		return r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Median lies between min and max.
func TestMedianBoundsProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		d := make([]time.Duration, len(vals))
		lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
		for i, v := range vals {
			d[i] = time.Duration(v)
			if d[i] < lo {
				lo = d[i]
			}
			if d[i] > hi {
				hi = d[i]
			}
		}
		m := Median(d)
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
