// Package feedback reproduces the paper's measurement methodology (§VI):
// clients record per-round protocol latencies in "user feedback" logs;
// submitted logs form a corpus from which the evaluation computes median
// latency per hour against concurrent-user counts (Fig. 5), latency CDFs
// for peak vs. off-peak hours (Fig. 6), and the Pearson product-moment
// correlation coefficients quoted in the text.
package feedback

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Round identifies one protocol message-exchange round (§IV-F, Fig. 4).
type Round int

// The five measured rounds.
const (
	Login1 Round = iota + 1
	Login2
	Switch1
	Switch2
	Join
)

// Rounds lists all rounds in display order.
var Rounds = []Round{Login1, Login2, Switch1, Switch2, Join}

// String names the round as in the paper's figures.
func (r Round) String() string {
	switch r {
	case Login1:
		return "LOGIN1"
	case Login2:
		return "LOGIN2"
	case Switch1:
		return "SWITCH1"
	case Switch2:
		return "SWITCH2"
	case Join:
		return "JOIN"
	default:
		return fmt.Sprintf("Round(%d)", int(r))
	}
}

// Sample is one measured protocol round.
type Sample struct {
	Round   Round
	At      time.Time
	Latency time.Duration
	OK      bool
}

// Log is one client's feedback log. The client records every round; the
// user may later "submit" the log to the provider.
type Log struct {
	mu      sync.Mutex
	samples []Sample
}

// NewLog creates an empty feedback log.
func NewLog() *Log { return &Log{} }

// Record appends one measured round.
func (l *Log) Record(r Round, at time.Time, latency time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, Sample{Round: r, At: at, Latency: latency, OK: ok})
}

// Samples returns a copy of the recorded samples.
func (l *Log) Samples() []Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Sample(nil), l.samples...)
}

// Len reports the number of recorded samples.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Corpus is the provider-side collection of submitted feedback logs plus
// the concurrent-user time series the live system tracks.
type Corpus struct {
	mu        sync.Mutex
	samples   []Sample
	userTimes []time.Time
	userCount []int
	logs      int
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus { return &Corpus{} }

// Submit ingests one client's feedback log.
func (c *Corpus) Submit(l *Log) {
	s := l.Samples()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = append(c.samples, s...)
	c.logs++
}

// RecordUsers appends one concurrent-user observation.
func (c *Corpus) RecordUsers(at time.Time, users int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.userTimes = append(c.userTimes, at)
	c.userCount = append(c.userCount, users)
}

// Logs reports how many feedback logs were submitted.
func (c *Corpus) Logs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logs
}

// Samples returns a copy of all ingested samples.
func (c *Corpus) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.samples...)
}

// Len reports total ingested samples.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.samples)
}

// HourlyPoint is one Fig. 5 x-position: an hour of the trace.
type HourlyPoint struct {
	Hour    int // hours since trace start
	Median  time.Duration
	Samples int
	Users   float64 // mean concurrent users during the hour
}

// Hourly buckets the corpus into per-hour medians for one round, paired
// with the mean concurrent-user count of each hour, over [start,
// start+hours).
func (c *Corpus) Hourly(r Round, start time.Time, hours int) []HourlyPoint {
	c.mu.Lock()
	defer c.mu.Unlock()

	lat := make([][]time.Duration, hours)
	for _, s := range c.samples {
		if s.Round != r || !s.OK {
			continue
		}
		h := int(s.At.Sub(start) / time.Hour)
		if h < 0 || h >= hours {
			continue
		}
		lat[h] = append(lat[h], s.Latency)
	}
	userSum := make([]float64, hours)
	userN := make([]int, hours)
	for i, at := range c.userTimes {
		h := int(at.Sub(start) / time.Hour)
		if h < 0 || h >= hours {
			continue
		}
		userSum[h] += float64(c.userCount[i])
		userN[h]++
	}
	out := make([]HourlyPoint, hours)
	for h := 0; h < hours; h++ {
		p := HourlyPoint{Hour: h, Samples: len(lat[h])}
		p.Median = Median(lat[h])
		if userN[h] > 0 {
			p.Users = userSum[h] / float64(userN[h])
		}
		out[h] = p
	}
	return out
}

// Latencies extracts the successful latencies of one round whose
// hour-of-day (relative to start) lies in [fromHour, toHour) — used to
// split peak (18–24) from off-peak (0–18) for Fig. 6.
func (c *Corpus) Latencies(r Round, start time.Time, fromHour, toHour int) []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []time.Duration
	for _, s := range c.samples {
		if s.Round != r || !s.OK {
			continue
		}
		hod := int(s.At.Sub(start)/time.Hour) % 24
		if hod < 0 {
			continue
		}
		if hod >= fromHour && hod < toHour {
			out = append(out, s.Latency)
		}
	}
	return out
}

// Median returns the median duration (0 for empty input).
func Median(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank.
func Quantile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// CDFPoint is one (x, P[latency ≤ x]) pair.
type CDFPoint struct {
	X time.Duration
	P float64
}

// CDF computes the empirical CDF of d at steps evenly spaced points over
// [0, max].
func CDF(d []time.Duration, max time.Duration, steps int) []CDFPoint {
	if steps < 2 {
		steps = 2
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]CDFPoint, 0, steps)
	for i := 0; i < steps; i++ {
		x := time.Duration(int64(max) * int64(i) / int64(steps-1))
		n := sort.Search(len(s), func(j int) bool { return s[j] > x })
		p := 0.0
		if len(s) > 0 {
			p = float64(n) / float64(len(s))
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out
}

// Pearson computes the Pearson product-moment correlation coefficient of
// two equal-length series (NaN-free: returns 0 when either variance is
// zero or inputs are too short).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// PearsonHourly correlates per-hour median latency with per-hour mean
// concurrent users, skipping hours without samples (the paper's
// "statistically insignificant samples" occur 0AM–6AM).
func PearsonHourly(points []HourlyPoint) float64 {
	var lat, users []float64
	for _, p := range points {
		if p.Samples == 0 {
			continue
		}
		lat = append(lat, float64(p.Median))
		users = append(users, p.Users)
	}
	return Pearson(lat, users)
}

// MaxAbsCDFGap returns the maximum vertical distance between two CDFs
// over shared x points (a Kolmogorov–Smirnov-style statistic quantifying
// Fig. 6's "virtually identical" claim).
func MaxAbsCDFGap(a, b []CDFPoint) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	gap := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(a[i].P - b[i].P)
		if d > gap {
			gap = d
		}
	}
	return gap
}
