// Package usermgr implements the User Manager (§IV-B, §IV-F1): it
// authenticates users via the two-round login protocol, generates user
// attributes from account data, the client connection, and the Channel
// Attribute List, and issues signed User Tickets that certify the
// client's public key.
//
// The handshake is stateless (§V): round-1 state travels back to the
// client inside an HMAC-sealed token, so any farm member behind the
// shared address can complete round 2. A farm is deployed by giving
// several Managers the same Config (keys + token secret) behind one
// simnet VIP.
package usermgr

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"p2pdrm/internal/accountmgr"
	"p2pdrm/internal/attr"
	"p2pdrm/internal/cryptoutil"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/policy"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/stoken"
	"p2pdrm/internal/svc"
	"p2pdrm/internal/ticket"
	"p2pdrm/internal/wire"
)

// Config parameterizes a User Manager (or a whole farm: every member gets
// the same Config).
type Config struct {
	// Accounts is the Account Manager feed.
	Accounts *accountmgr.Manager
	// Keys is the farm-shared key pair; its public half is baked into
	// clients (or delivered by the Redirection Manager).
	Keys *cryptoutil.KeyPair
	// TokenSecret authenticates round-1 handshake tokens across the farm.
	TokenSecret []byte
	// TicketLifetime bounds User Ticket validity. The paper recommends
	// less than the average program length (§IV-B). Default 10 minutes.
	TicketLifetime time.Duration
	// ChallengeLifetime bounds how long a round-1 challenge stays
	// answerable. Default 30 seconds.
	ChallengeLifetime time.Duration
	// MinVersion is the minimum client version admitted (§IV-F1).
	MinVersion uint32
	// ClientImage is the golden client binary for the attestation
	// checksum. Empty disables the checksum comparison.
	ClientImage []byte
	// Domain restricts service to accounts of one Authentication Domain
	// ("" serves every account) (§V).
	Domain string
	// RNG supplies nonces and checksum salts (nil = crypto/rand).
	RNG io.Reader

	// Shard is this member's view of a sharded farm's key map; nil for a
	// classic VIP farm. When set, both login rounds check that this
	// member owns the account's key-range and answer wire.CodeWrongShard
	// otherwise, and per-account hot state below becomes manager-local
	// (moved between members by the farm's handoff).
	Shard *svc.ShardView
	// LoginRateLimit caps round-1 challenges per account per RateWindow
	// (0 disables). Manager-local: meaningful under sharding, where one
	// member sees all of an account's traffic.
	LoginRateLimit int
	// RateWindow is the rate-limit window. Default 1 minute.
	RateWindow time.Duration
	// AbuseThreshold locks an account out after this many consecutive
	// failed round-2 verifications (0 disables).
	AbuseThreshold int
	// LockoutFor is the abuse lockout duration. Default 5 minutes.
	LockoutFor time.Duration
}

func (c *Config) fill() {
	if c.TicketLifetime <= 0 {
		c.TicketLifetime = 10 * time.Minute
	}
	if c.ChallengeLifetime <= 0 {
		c.ChallengeLifetime = 30 * time.Second
	}
	if c.RateWindow <= 0 {
		c.RateWindow = time.Minute
	}
	if c.LockoutFor <= 0 {
		c.LockoutFor = 5 * time.Minute
	}
}

// Stats counts protocol outcomes.
type Stats struct {
	Login1Served  int64
	Login2Served  int64
	TicketsIssued int64
	Failures      int64
	WrongShard    int64 // requests for accounts this member does not own
	RateLimited   int64 // round-1 challenges refused by the rate window
	LockedOut     int64 // logins refused during an abuse lockout
}

// accountState is one account's manager-local hot state: round-1
// challenge bookkeeping and the rate/abuse counters. Under sharding it
// lives only on the account's owner and travels in HandoffRecords when
// the ring moves the account.
type accountState struct {
	Challenges  int64     // round-1 challenges issued to the account
	WindowStart time.Time // current rate-limit window
	WindowCount int       // challenges inside the window
	ConsecFails int       // consecutive failed round-2 verifications
	LockedUntil time.Time // abuse lockout expiry (zero = not locked)
}

// Manager is one User Manager backend.
type Manager struct {
	cfg    Config
	node   *simnet.Node
	rt     *svc.Runtime
	sealer *stoken.Sealer

	mu        sync.Mutex
	chanAttrs policy.ChannelAttrList
	feedSeen  uint64
	stats     Stats
	accounts  map[string]*accountState // keyed by account email
}

// New creates a User Manager on the node and registers its services.
func New(node *simnet.Node, cfg Config) (*Manager, error) {
	if cfg.Accounts == nil || cfg.Keys == nil {
		return nil, fmt.Errorf("usermgr: Accounts and Keys are required")
	}
	if len(cfg.TokenSecret) == 0 {
		return nil, fmt.Errorf("usermgr: TokenSecret is required")
	}
	cfg.fill()
	m := &Manager{
		cfg:       cfg,
		node:      node,
		rt:        svc.NewRuntime(node),
		sealer:    stoken.New(cfg.TokenSecret),
		chanAttrs: policy.ChannelAttrList{},
		accounts:  make(map[string]*accountState),
	}
	svc.Register(m.rt, wire.SvcLogin1, wire.DecodeLogin1Req, m.handleLogin1)
	svc.Register(m.rt, wire.SvcLogin2, wire.DecodeLogin2Req, m.handleLogin2)
	svc.RegisterOneWay(m.rt, wire.SvcPolicyFeed, wire.DecodeFeed, m.handlePolicyFeed)
	// Optional SSL-like transport (§IV-G1): sealed variants of the
	// client-facing services under the farm key pair.
	if err := m.rt.EnableSealed(cfg.Keys, cfg.RNG, wire.SvcLogin1, wire.SvcLogin2); err != nil {
		return nil, err
	}
	return m, nil
}

// PublicKey returns the farm's public key.
func (m *Manager) PublicKey() cryptoutil.PublicKey { return m.cfg.Keys.Public() }

// Runtime exposes the manager's service runtime (endpoint metrics).
func (m *Manager) Runtime() *svc.Runtime { return m.rt }

// Stats returns a snapshot of protocol counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SetChannelAttrList installs the Channel Attribute List pushed by the
// Channel Policy Manager (§IV-A).
func (m *Manager) SetChannelAttrList(l policy.ChannelAttrList) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chanAttrs = l.Clone()
}

func (m *Manager) handlePolicyFeed(_ simnet.Addr, feed *wire.Feed) {
	l, err := policy.DecodeAttrList(feed.Body)
	if err != nil {
		return // undecodable feed body: drop, the push is one-way
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if feed.Version <= m.feedSeen {
		return // reordered stale push
	}
	m.feedSeen = feed.Version
	m.chanAttrs = l.Clone()
}

func (m *Manager) fail() {
	m.mu.Lock()
	m.stats.Failures++
	m.mu.Unlock()
}

// checkShard verifies this member owns the account's key-range. Must be
// called before m.mu is taken (the shard view locks the farm).
func (m *Manager) checkShard(email string) error {
	if m.cfg.Shard == nil {
		return nil
	}
	if err := m.cfg.Shard.Check(email); err != nil {
		m.mu.Lock()
		m.stats.WrongShard++
		m.mu.Unlock()
		return err
	}
	return nil
}

// acctState returns the account's hot-state record, creating it on first
// touch. Caller holds m.mu.
func (m *Manager) acctState(email string) *accountState {
	st := m.accounts[email]
	if st == nil {
		st = &accountState{}
		m.accounts[email] = st
	}
	return st
}

// admitChallenge applies the per-account lockout and rate window to a
// round-1 request and records the challenge on admission.
func (m *Manager) admitChallenge(email string, now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.acctState(email)
	if now.Before(st.LockedUntil) {
		m.stats.LockedOut++
		m.stats.Failures++
		return wire.Errf(wire.CodeDenied, "account locked out until %s", st.LockedUntil.Format(time.RFC3339))
	}
	if m.cfg.LoginRateLimit > 0 {
		if now.Sub(st.WindowStart) >= m.cfg.RateWindow {
			st.WindowStart = now
			st.WindowCount = 0
		}
		if st.WindowCount >= m.cfg.LoginRateLimit {
			m.stats.RateLimited++
			m.stats.Failures++
			return wire.Errf(wire.CodeDenied, "login rate limit exceeded")
		}
		st.WindowCount++
	}
	st.Challenges++
	return nil
}

// noteAuthFail records a failed round-2 verification and opens the abuse
// lockout at the threshold. noteAuthOK clears the consecutive count.
func (m *Manager) noteAuthFail(email string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.acctState(email)
	st.ConsecFails++
	if m.cfg.AbuseThreshold > 0 && st.ConsecFails >= m.cfg.AbuseThreshold {
		st.LockedUntil = now.Add(m.cfg.LockoutFor)
		st.ConsecFails = 0
	}
}

func (m *Manager) noteAuthOK(email string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acctState(email).ConsecFails = 0
}

// ExportShard implements svc.ShardMember: it removes and returns every
// account record the new shard map assigns elsewhere, sorted by key so
// handoff contents are deterministic.
func (m *Manager) ExportShard(leaving func(key string) bool) []svc.HandoffRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []svc.HandoffRecord
	for email, st := range m.accounts {
		if leaving(email) {
			out = append(out, svc.HandoffRecord{Key: email, Data: st})
			delete(m.accounts, email)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ImportShard implements svc.ShardMember: it installs account records
// handed over from other members.
func (m *Manager) ImportShard(recs []svc.HandoffRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		if st, ok := r.Data.(*accountState); ok {
			m.accounts[r.Key] = st
		}
	}
}

// AccountStates reports how many accounts currently have manager-local
// hot state here (tests and handoff accounting).
func (m *Manager) AccountStates() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.accounts)
}

// handleLogin1 runs the first login round: locate the user, mint a nonce
// and checksum parameters, and return them sealed under shp along with
// the stateless handshake token.
func (m *Manager) handleLogin1(_ simnet.Addr, req *wire.Login1Req) (*wire.Login1Resp, error) {
	if err := m.checkShard(req.Email); err != nil {
		return nil, err
	}
	acct, err := m.cfg.Accounts.Lookup(req.Email)
	if err != nil {
		m.fail()
		return nil, wire.Errf(wire.CodeNoAccount, "unknown or disabled account")
	}
	if m.cfg.Domain != "" && acct.Domain != m.cfg.Domain {
		m.fail()
		return nil, wire.Errf(wire.CodeWrongDomain, "account served by another domain")
	}
	if err := m.admitChallenge(req.Email, m.node.Scheduler().Now()); err != nil {
		return nil, err
	}
	nonce, err := cryptoutil.NewNonce(m.cfg.RNG)
	if err != nil {
		m.fail()
		return nil, wire.Errf(wire.CodeDenied, "nonce generation failed")
	}
	params := m.newChecksumParams()

	// Challenge: shp-sealed nonce || params (§IV-F1). The per-account
	// cached sealer amortizes the AES/GCM setup across logins; accounts
	// injected without one (hand-built fixtures) fall back to one-shot.
	paramBytes := params.Encode()
	plain := make([]byte, 0, cryptoutil.NonceSize+16)
	plain = append(plain, nonce[:]...)
	plain = append(plain, paramBytes...)
	shpSealer := acct.SHPSealer
	if shpSealer == nil {
		shpSealer = acct.SHP.Sealer()
	}
	sealed, err := shpSealer.Seal(m.cfg.RNG, plain, nil)
	if err != nil {
		m.fail()
		return nil, wire.Errf(wire.CodeDenied, "challenge sealing failed")
	}

	// Stateless token: everything round 2 needs to verify the response.
	now := m.node.Scheduler().Now()
	token := m.sealer.SealState(now.Add(m.cfg.ChallengeLifetime), func(e *wire.Enc) {
		e.Str(req.Email)
		e.Blob(req.ClientKey)
		e.Blob(nonce[:])
		e.Blob(paramBytes)
		e.U32(req.Version)
	})

	m.mu.Lock()
	m.stats.Login1Served++
	m.mu.Unlock()
	return &wire.Login1Resp{Sealed: sealed, Token: token}, nil
}

func (m *Manager) newChecksumParams() cryptoutil.ChecksumParams {
	var p cryptoutil.ChecksumParams
	var raw [16]byte
	rng := m.cfg.RNG
	if rng != nil {
		_, _ = io.ReadFull(rng, raw[:])
	} else {
		n, _ := cryptoutil.NewNonce(nil)
		copy(raw[:], n[:])
	}
	imgLen := len(m.cfg.ClientImage)
	if imgLen == 0 {
		imgLen = 1
	}
	p.Offset = uint32(int(raw[0])<<8|int(raw[1])) % uint32(imgLen)
	p.Length = 64 + uint32(raw[2])
	copy(p.Salt[:], raw[3:11])
	return p
}

// handleLogin2 runs the second login round: verify the token, the nonce
// echo, the client signature (proof of private-key possession), and the
// attestation checksum, then issue the signed User Ticket.
func (m *Manager) handleLogin2(from simnet.Addr, req *wire.Login2Req) (*wire.Login2Resp, error) {
	// Ownership first: during a handoff's grace window the previous
	// owner still passes, so a login whose round 1 ran there completes.
	if err := m.checkShard(req.Email); err != nil {
		return nil, err
	}
	now := m.node.Scheduler().Now()
	var (
		email          string
		clientKeyBytes []byte
		nonce          []byte
		paramBytes     []byte
		version        uint32
	)
	err := m.sealer.OpenState(req.Token, now, func(d *wire.Dec) {
		email = d.Str()
		clientKeyBytes = d.Blob()
		nonce = d.Blob()
		paramBytes = d.Blob()
		version = d.U32()
	})
	if err != nil {
		m.fail()
		return nil, wire.Errf(wire.CodeBadToken, "%v", err)
	}
	if email != req.Email || !bytes.Equal(nonce, req.Nonce) {
		m.fail()
		m.noteAuthFail(req.Email, now)
		return nil, wire.Errf(wire.CodeDenied, "nonce or identity mismatch")
	}
	clientKey, err := cryptoutil.DecodePublicKey(clientKeyBytes)
	if err != nil {
		m.fail()
		m.noteAuthFail(email, now)
		return nil, wire.Errf(wire.CodeDenied, "bad client key")
	}
	// Proof of private-key possession: signature over nonce || checksum.
	signed := append(append([]byte(nil), req.Nonce...), req.Checksum...)
	if !clientKey.VerifySig(signed, req.Sig) {
		m.fail()
		m.noteAuthFail(email, now)
		return nil, wire.Errf(wire.CodeDenied, "client signature invalid")
	}
	// Remote attestation (rudimentary per the paper, §IV-F1 fn. 3).
	if len(m.cfg.ClientImage) > 0 {
		params, err := cryptoutil.DecodeChecksumParams(paramBytes)
		if err != nil {
			m.fail()
			return nil, wire.Errf(wire.CodeBadToken, "corrupt checksum params")
		}
		want := cryptoutil.Checksum(m.cfg.ClientImage, params)
		if !bytes.Equal(req.Checksum, want[:]) {
			m.fail()
			m.noteAuthFail(email, now)
			return nil, wire.Errf(wire.CodeBadAttestation, "client image checksum mismatch")
		}
	}
	if version < m.cfg.MinVersion {
		m.fail()
		return nil, wire.Errf(wire.CodeVersionTooOld,
			"client version %d < minimum %d", version, m.cfg.MinVersion)
	}
	// Re-read the account: subscriptions may have changed since round 1.
	acct, err := m.cfg.Accounts.Lookup(email)
	if err != nil {
		m.fail()
		return nil, wire.Errf(wire.CodeNoAccount, "account vanished")
	}

	attrs := m.buildUserAttrs(acct, from, version, now)
	ut := &ticket.UserTicket{
		UserIN:    acct.UserIN,
		ClientKey: clientKey,
		Start:     now,
		Expiry:    ticket.CapExpiry(now.Add(m.cfg.TicketLifetime), attrs),
		Attrs:     attrs,
	}
	blob := ticket.SignUser(ut, m.cfg.Keys)
	m.noteAuthOK(email)

	m.mu.Lock()
	m.stats.Login2Served++
	m.stats.TicketsIssued++
	m.mu.Unlock()
	return &wire.Login2Resp{
		UserTicket: blob,
		ServerTime: now,
		MinVersion: m.cfg.MinVersion,
	}, nil
}

// buildUserAttrs generates user attributes from the three sources of
// §IV-B: (1) account and subscription information, (2) client connection
// information, (3) the Channel Attribute List (for utimes).
func (m *Manager) buildUserAttrs(acct accountmgr.Account, from simnet.Addr, version uint32, now time.Time) attr.List {
	m.mu.Lock()
	cal := m.chanAttrs
	m.mu.Unlock()

	var l attr.List
	add := func(name string, value attr.Value, stime, etime time.Time) {
		l = append(l, attr.Attribute{
			Name:  name,
			Value: value,
			STime: stime,
			ETime: etime,
			UTime: cal.UTimeFor(name),
		})
	}

	// (2) Connection-derived attributes.
	add(attr.NameNetAddr, attr.Value(from), time.Time{}, time.Time{})
	if info, err := geo.Lookup(from); err == nil {
		add(attr.NameRegion, attr.Value(info.Region), time.Time{}, time.Time{})
		add(attr.NameAS, attr.Value(info.ASN), time.Time{}, time.Time{})
	}
	add(attr.NameVersion, attr.Value(strconv.FormatUint(uint64(version), 10)), time.Time{}, time.Time{})

	// (1) Subscriptions: only those not already over (future starts are
	// fine — the stime carries them).
	for _, s := range acct.Subscriptions {
		if !s.End.IsZero() && !now.Before(s.End) {
			continue
		}
		add(attr.NameSubscription, attr.Value(s.Package), s.Start, s.End)
	}
	return l
}
