package usermgr

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"p2pdrm/internal/accountmgr"
	"p2pdrm/internal/attr"
	"p2pdrm/internal/cryptoutil"
	"p2pdrm/internal/geo"
	"p2pdrm/internal/policy"
	"p2pdrm/internal/sim"
	"p2pdrm/internal/simnet"
	"p2pdrm/internal/ticket"
	"p2pdrm/internal/wire"
)

var (
	t0        = time.Date(2008, 6, 23, 12, 0, 0, 0, time.UTC)
	testImage = bytes.Repeat([]byte("CLIENT-BINARY-IMAGE-"), 64)
)

type fixture struct {
	sched    *sim.Scheduler
	net      *simnet.Network
	accounts *accountmgr.Manager
	mgr      *Manager
	umKeys   *cryptoutil.KeyPair
	rng      *cryptoutil.SeededReader
}

func newFixture(t *testing.T, mut func(*Config)) *fixture {
	t.Helper()
	s := sim.New(t0, 1)
	net := simnet.New(s, simnet.WithLatency(simnet.UniformLatency{Base: 5 * time.Millisecond}))
	rng := cryptoutil.NewSeededReader(7)
	keys, err := cryptoutil.NewKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	accounts := accountmgr.New()
	cfg := Config{
		Accounts:    accounts,
		Keys:        keys,
		TokenSecret: []byte("um secret"),
		ClientImage: testImage,
		MinVersion:  2,
		RNG:         rng,
	}
	if mut != nil {
		mut(&cfg)
	}
	node := net.NewNode("um.provider")
	mgr, err := New(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sched: s, net: net, accounts: accounts, mgr: mgr, umKeys: keys, rng: rng}
}

// loginOpts tweak the simulated client's behaviour for negative tests.
type loginOpts struct {
	password     string
	version      uint32
	image        []byte
	wrongSignKey bool
	target       simnet.Addr
}

// doLogin executes the client side of the login protocol from node.
func (f *fixture) doLogin(node *simnet.Node, email string, o loginOpts) ([]byte, *ticket.UserTicket, error) {
	if o.version == 0 {
		o.version = 2
	}
	if o.image == nil {
		o.image = testImage
	}
	if o.target == "" {
		o.target = "um.provider"
	}
	kp, err := cryptoutil.NewKeyPair(f.rng)
	if err != nil {
		return nil, nil, err
	}
	req1 := &wire.Login1Req{Email: email, ClientKey: kp.Public().Encode(), Version: o.version}
	raw1, err := node.Call(o.target, wire.SvcLogin1, req1.Encode(), 0)
	if err != nil {
		return nil, nil, err
	}
	resp1, err := wire.DecodeLogin1Resp(raw1)
	if err != nil {
		return nil, nil, err
	}
	shp := cryptoutil.HashPassword(o.password, email)
	plain, err := shp.Open(resp1.Sealed, nil)
	if err != nil {
		// Wrong password: client cannot decrypt the challenge. Proceed
		// with garbage (an attacker would) to show the server denies it.
		plain = make([]byte, cryptoutil.NonceSize+16)
	}
	nonce := plain[:cryptoutil.NonceSize]
	params, err := cryptoutil.DecodeChecksumParams(plain[cryptoutil.NonceSize:])
	if err != nil {
		return nil, nil, err
	}
	sum := cryptoutil.Checksum(o.image, params)
	signer := kp
	if o.wrongSignKey {
		signer, _ = cryptoutil.NewKeyPair(f.rng)
	}
	signed := append(append([]byte(nil), nonce...), sum[:]...)
	req2 := &wire.Login2Req{
		Email: email, Token: resp1.Token, Nonce: nonce,
		Checksum: sum[:], Sig: signer.Sign(signed),
	}
	raw2, err := node.Call(o.target, wire.SvcLogin2, req2.Encode(), 0)
	if err != nil {
		return nil, nil, err
	}
	resp2, err := wire.DecodeLogin2Resp(raw2)
	if err != nil {
		return nil, nil, err
	}
	ut, err := ticket.VerifyUser(resp2.UserTicket, f.umKeys.Public())
	if err != nil {
		return nil, nil, err
	}
	return resp2.UserTicket, ut, nil
}

func remoteCode(err error) wire.Code {
	var se *wire.ServiceError
	if errors.As(err, &se) {
		return se.Code
	}
	return wire.CodeUnknown
}

func TestLoginHappyPath(t *testing.T) {
	f := newFixture(t, nil)
	_, err := f.accounts.Register("alice@example.com", "pw")
	if err != nil {
		t.Fatal(err)
	}
	cli := f.net.NewNode(geo.Addr(100, 177, 1))
	var ut *ticket.UserTicket
	f.sched.Go(func() {
		var lerr error
		_, ut, lerr = f.doLogin(cli, "alice@example.com", loginOpts{password: "pw"})
		if lerr != nil {
			t.Errorf("login: %v", lerr)
		}
	})
	f.sched.Run()
	if ut == nil {
		t.Fatal("no ticket issued")
	}
	if ut.UserIN == 0 {
		t.Fatal("ticket has zero UserIN")
	}
	if got := ut.NetAddr(); got != string(geo.Addr(100, 177, 1)) {
		t.Fatalf("NetAddr attr = %q", got)
	}
	if a, ok := ut.Attrs.First(attr.NameRegion); !ok || a.Value != "100" {
		t.Fatalf("Region attr = %v %v", a, ok)
	}
	if a, ok := ut.Attrs.First(attr.NameAS); !ok || a.Value != "177" {
		t.Fatalf("AS attr = %v %v", a, ok)
	}
	if a, ok := ut.Attrs.First(attr.NameVersion); !ok || a.Value != "2" {
		t.Fatalf("Version attr = %v %v", a, ok)
	}
	if err := ut.ValidAt(f.sched.Now()); err != nil {
		t.Fatalf("fresh ticket invalid: %v", err)
	}
	st := f.mgr.Stats()
	if st.Login1Served != 1 || st.Login2Served != 1 || st.TicketsIssued != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoginWrongPassword(t *testing.T) {
	f := newFixture(t, nil)
	_, _ = f.accounts.Register("alice@e", "correct")
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() {
		_, _, lerr = f.doLogin(cli, "alice@e", loginOpts{password: "wrong"})
	})
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeDenied {
		t.Fatalf("err = %v (code %q), want %s", lerr, code, wire.CodeDenied)
	}
}

func TestLoginUnknownAccount(t *testing.T) {
	f := newFixture(t, nil)
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() { _, _, lerr = f.doLogin(cli, "ghost@e", loginOpts{password: "x"}) })
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeNoAccount {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeNoAccount)
	}
}

func TestLoginDisabledAccount(t *testing.T) {
	f := newFixture(t, nil)
	_, _ = f.accounts.Register("a@e", "pw")
	_ = f.accounts.SetDisabled("a@e", true)
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() { _, _, lerr = f.doLogin(cli, "a@e", loginOpts{password: "pw"}) })
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeNoAccount {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeNoAccount)
	}
}

func TestLoginWrongDomain(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.Domain = "eu" })
	_, _ = f.accounts.Register("a@e", "pw")
	_ = f.accounts.SetDomain("a@e", "us")
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() { _, _, lerr = f.doLogin(cli, "a@e", loginOpts{password: "pw"}) })
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeWrongDomain {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeWrongDomain)
	}
}

func TestLoginTamperedClientImage(t *testing.T) {
	f := newFixture(t, nil)
	_, _ = f.accounts.Register("a@e", "pw")
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	// Flip every byte: whatever window the checksum parameters sample,
	// the attestation must fail.
	tampered := append([]byte(nil), testImage...)
	for i := range tampered {
		tampered[i] ^= 0xFF
	}
	var lerr error
	f.sched.Go(func() {
		_, _, lerr = f.doLogin(cli, "a@e", loginOpts{password: "pw", image: tampered})
	})
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeBadAttestation {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeBadAttestation)
	}
}

func TestLoginVersionTooOld(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.MinVersion = 5 })
	_, _ = f.accounts.Register("a@e", "pw")
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() {
		_, _, lerr = f.doLogin(cli, "a@e", loginOpts{password: "pw", version: 3})
	})
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeVersionTooOld {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeVersionTooOld)
	}
}

func TestLoginWrongClientKeySignature(t *testing.T) {
	// An attacker holding a captured challenge but not the private key
	// matching the LOGIN1 public key cannot finish.
	f := newFixture(t, nil)
	_, _ = f.accounts.Register("a@e", "pw")
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() {
		_, _, lerr = f.doLogin(cli, "a@e", loginOpts{password: "pw", wrongSignKey: true})
	})
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeDenied {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeDenied)
	}
}

func TestLoginChallengeExpires(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.ChallengeLifetime = 10 * time.Second })
	_, _ = f.accounts.Register("a@e", "pw")
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var lerr error
	f.sched.Go(func() {
		kp, _ := cryptoutil.NewKeyPair(f.rng)
		req1 := &wire.Login1Req{Email: "a@e", ClientKey: kp.Public().Encode(), Version: 2}
		raw1, err := cli.Call("um.provider", wire.SvcLogin1, req1.Encode(), 0)
		if err != nil {
			lerr = err
			return
		}
		resp1, _ := wire.DecodeLogin1Resp(raw1)
		shp := cryptoutil.HashPassword("pw", "a@e")
		plain, _ := shp.Open(resp1.Sealed, nil)
		nonce := plain[:cryptoutil.NonceSize]
		params, _ := cryptoutil.DecodeChecksumParams(plain[cryptoutil.NonceSize:])
		sum := cryptoutil.Checksum(testImage, params)

		f.sched.Sleep(time.Minute) // let the challenge lapse

		signed := append(append([]byte(nil), nonce...), sum[:]...)
		req2 := &wire.Login2Req{Email: "a@e", Token: resp1.Token, Nonce: nonce, Checksum: sum[:], Sig: kp.Sign(signed)}
		_, lerr = cli.Call("um.provider", wire.SvcLogin2, req2.Encode(), 0)
	})
	f.sched.Run()
	if code := remoteCode(lerr); code != wire.CodeBadToken {
		t.Fatalf("err = %v, want %s", lerr, wire.CodeBadToken)
	}
}

func TestSubscriptionAttributesAndTicketCap(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.TicketLifetime = time.Hour })
	_, _ = f.accounts.Register("a@e", "pw")
	subEnd := t0.Add(20 * time.Minute)
	_ = f.accounts.Subscribe("a@e", "premium", t0.Add(-time.Hour), subEnd)
	_ = f.accounts.Subscribe("a@e", "expired", t0.Add(-2*time.Hour), t0.Add(-time.Hour))
	cli := f.net.NewNode(geo.Addr(1, 1, 1))
	var ut *ticket.UserTicket
	f.sched.Go(func() {
		_, ut, _ = f.doLogin(cli, "a@e", loginOpts{password: "pw"})
	})
	f.sched.Run()
	if ut == nil {
		t.Fatal("no ticket")
	}
	subs := ut.Attrs.Find(attr.NameSubscription)
	if len(subs) != 1 || subs[0].Value != "premium" {
		t.Fatalf("subscription attrs = %v (expired one must be dropped)", subs)
	}
	// §IV-B: ticket expiry no later than the soonest attribute etime.
	if !ut.Expiry.Equal(subEnd) {
		t.Fatalf("ticket expiry = %v, want capped to %v", ut.Expiry, subEnd)
	}
}

func TestUTimeStampedFromChannelAttrList(t *testing.T) {
	f := newFixture(t, nil)
	_, _ = f.accounts.Register("a@e", "pw")
	updated := t0.Add(-time.Hour)
	f.mgr.SetChannelAttrList(policy.ChannelAttrList{
		{Name: attr.NameRegion, Value: "100"}: updated,
	})
	cli := f.net.NewNode(geo.Addr(100, 1, 1))
	var ut *ticket.UserTicket
	f.sched.Go(func() { _, ut, _ = f.doLogin(cli, "a@e", loginOpts{password: "pw"}) })
	f.sched.Run()
	if ut == nil {
		t.Fatal("no ticket")
	}
	a, ok := ut.Attrs.First(attr.NameRegion)
	if !ok || !a.UTime.Equal(updated) {
		t.Fatalf("Region utime = %v, want %v", a.UTime, updated)
	}
}

func TestPolicyFeedHandler(t *testing.T) {
	f := newFixture(t, nil)
	cal := policy.ChannelAttrList{{Name: attr.NameRegion, Value: "7"}: t0}
	pm := f.net.NewNode("pm.provider")
	feed := &wire.Feed{Version: 1, Body: cal.Encode()}
	pm.Send("um.provider", wire.SvcPolicyFeed, feed.Encode())
	f.sched.Run()
	f.mgr.mu.Lock()
	got := f.mgr.chanAttrs.UTimeFor(attr.NameRegion)
	f.mgr.mu.Unlock()
	if !got.Equal(t0) {
		t.Fatalf("feed not applied: utime = %v", got)
	}
}

func TestFarmStatelessAcrossBackends(t *testing.T) {
	// LOGIN1 served by backend 1, LOGIN2 by backend 2 — the VIP
	// round-robins, and the stateless token makes it work (§V).
	s := sim.New(t0, 1)
	net := simnet.New(s, simnet.WithLatency(simnet.UniformLatency{Base: 5 * time.Millisecond}))
	rng := cryptoutil.NewSeededReader(7)
	keys, _ := cryptoutil.NewKeyPair(rng)
	accounts := accountmgr.New()
	_, _ = accounts.Register("a@e", "pw")
	cfg := Config{
		Accounts: accounts, Keys: keys, TokenSecret: []byte("shared"),
		ClientImage: testImage, RNG: rng,
	}
	b1 := net.NewNode("um-backend-1")
	b2 := net.NewNode("um-backend-2")
	m1, err := New(b1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(b2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.NewVIP("um.provider", b1, b2)
	f := &fixture{sched: s, net: net, accounts: accounts, umKeys: keys, rng: rng}
	cli := net.NewNode(geo.Addr(1, 1, 1))
	var ut *ticket.UserTicket
	var lerr error
	s.Go(func() { _, ut, lerr = f.doLogin(cli, "a@e", loginOpts{password: "pw"}) })
	s.Run()
	if lerr != nil || ut == nil {
		t.Fatalf("cross-backend login failed: %v", lerr)
	}
	s1, s2 := m1.Stats(), m2.Stats()
	if s1.Login1Served != 1 || s2.Login2Served != 1 {
		t.Fatalf("rounds not split across backends: %+v %+v", s1, s2)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	s := sim.New(t0, 1)
	net := simnet.New(s)
	node := net.NewNode("um")
	if _, err := New(node, Config{}); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("err = %v", err)
	}
}
