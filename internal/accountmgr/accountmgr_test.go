package accountmgr

import (
	"errors"
	"testing"
	"time"
)

var (
	now  = time.Date(2008, 6, 23, 12, 0, 0, 0, time.UTC)
	past = now.Add(-time.Hour)
	soon = now.Add(time.Hour)
)

func TestRegisterAssignsUniqueUserINs(t *testing.T) {
	m := New()
	a, err := m.Register("a@example.com", "pw-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Register("b@example.com", "pw-b")
	if err != nil {
		t.Fatal(err)
	}
	if a.UserIN == 0 || b.UserIN == 0 || a.UserIN == b.UserIN {
		t.Fatalf("UserINs = %d, %d", a.UserIN, b.UserIN)
	}
	if a.SHP == b.SHP {
		t.Fatal("different passwords produced identical shp")
	}
}

func TestRegisterDuplicateEmail(t *testing.T) {
	m := New()
	if _, err := m.Register("a@e", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register("a@e", "y"); !errors.Is(err, ErrDuplicateEmail) {
		t.Fatalf("err = %v, want ErrDuplicateEmail", err)
	}
}

func TestLookupUnknown(t *testing.T) {
	m := New()
	if _, err := m.Lookup("ghost@e"); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v, want ErrNoAccount", err)
	}
}

func TestDisableBlocksLookup(t *testing.T) {
	m := New()
	_, _ = m.Register("a@e", "x")
	if err := m.SetDisabled("a@e", true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup("a@e"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("err = %v, want ErrDisabled", err)
	}
	_ = m.SetDisabled("a@e", false)
	if _, err := m.Lookup("a@e"); err != nil {
		t.Fatalf("re-enabled account not found: %v", err)
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	m := New()
	_, _ = m.Register("a@e", "x")
	if err := m.Subscribe("a@e", "premium", past, soon); err != nil {
		t.Fatal(err)
	}
	acct, _ := m.Lookup("a@e")
	if len(acct.Subscriptions) != 1 || acct.Subscriptions[0].Package != "premium" {
		t.Fatalf("subs = %+v", acct.Subscriptions)
	}
	if !acct.Subscriptions[0].ActiveAt(now) {
		t.Fatal("subscription not active inside its window")
	}
	if acct.Subscriptions[0].ActiveAt(soon.Add(time.Minute)) {
		t.Fatal("subscription active after end")
	}
	if err := m.CancelSubscription("a@e", "premium"); err != nil {
		t.Fatal(err)
	}
	acct, _ = m.Lookup("a@e")
	if len(acct.Subscriptions) != 0 {
		t.Fatalf("subs after cancel = %+v", acct.Subscriptions)
	}
}

func TestSubscriptionOpenEnded(t *testing.T) {
	s := Subscription{Package: "p", Start: past}
	if !s.ActiveAt(now.AddDate(10, 0, 0)) {
		t.Fatal("open-ended subscription expired")
	}
	if s.ActiveAt(past.Add(-time.Second)) {
		t.Fatal("subscription active before start")
	}
}

func TestSubscribeUnknownAccount(t *testing.T) {
	m := New()
	if err := m.Subscribe("ghost@e", "p", past, soon); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
	if err := m.CancelSubscription("ghost@e", "p"); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
	if err := m.SetDomain("ghost@e", "d"); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
	if err := m.SetDisabled("ghost@e", true); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
	if err := m.ChangePassword("ghost@e", "x"); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetDomain(t *testing.T) {
	m := New()
	_, _ = m.Register("a@e", "x")
	if err := m.SetDomain("a@e", "eu-west"); err != nil {
		t.Fatal(err)
	}
	acct, _ := m.Lookup("a@e")
	if acct.Domain != "eu-west" {
		t.Fatalf("domain = %q", acct.Domain)
	}
}

func TestChangePassword(t *testing.T) {
	m := New()
	before, _ := m.Register("a@e", "old")
	if err := m.ChangePassword("a@e", "new"); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Lookup("a@e")
	if before.SHP == after.SHP {
		t.Fatal("shp unchanged after password change")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	_, _ = m.Register("a@e", "x")
	_ = m.Subscribe("a@e", "p1", past, soon)
	snap, _ := m.Lookup("a@e")
	snap.Subscriptions[0].Package = "tampered"
	fresh, _ := m.Lookup("a@e")
	if fresh.Subscriptions[0].Package != "p1" {
		t.Fatal("snapshot shares state with the manager")
	}
}

func TestCount(t *testing.T) {
	m := New()
	_, _ = m.Register("a@e", "x")
	_, _ = m.Register("b@e", "x")
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
