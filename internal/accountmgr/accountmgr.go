// Package accountmgr implements the Account Manager: the out-of-band
// service (a web site in the paper, §II "Viewing Experience") where users
// register, subscribe to channel packages, purchase pay-per-view
// programs, and top up accounts. It "securely sends the user's
// identification, subscription, and payment information to the User
// Manager" (§IV-B) — in this reproduction the User Manager reads account
// snapshots directly.
package accountmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p2pdrm/internal/cryptoutil"
)

// Account errors.
var (
	ErrDuplicateEmail = errors.New("accountmgr: email already registered")
	ErrNoAccount      = errors.New("accountmgr: no such account")
	ErrDisabled       = errors.New("accountmgr: account disabled")
)

// Subscription is one package the user subscribed to, with its paid
// period. Zero End means open-ended (auto-renewing).
type Subscription struct {
	Package string
	Start   time.Time
	End     time.Time
}

// ActiveAt reports whether the subscription covers t.
func (s Subscription) ActiveAt(t time.Time) bool {
	if !s.Start.IsZero() && t.Before(s.Start) {
		return false
	}
	if !s.End.IsZero() && !t.Before(s.End) {
		return false
	}
	return true
}

// Account is the snapshot the User Manager consumes.
type Account struct {
	Email  string
	UserIN uint64
	SHP    cryptoutil.SymKey // secure hash of the password
	// SHPSealer is SHP in cached-AEAD form, built once at registration
	// (and on password change) and shared by every snapshot: the User
	// Manager seals a login challenge under shp on every LOGIN1, so the
	// AES/GCM setup is paid per account, not per login.
	SHPSealer     *cryptoutil.SealKey
	Subscriptions []Subscription
	Domain        string // Authentication Domain (§V)
	Disabled      bool
}

// Manager is the Account Manager.
type Manager struct {
	mu      sync.Mutex
	byEmail map[string]*Account
	nextIN  uint64
}

// New creates an empty Account Manager.
func New() *Manager {
	return &Manager{byEmail: make(map[string]*Account), nextIN: 1}
}

// Register creates an account, hashing the password into shp, and returns
// its snapshot.
func (m *Manager) Register(email, password string) (Account, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byEmail[email]; ok {
		return Account{}, ErrDuplicateEmail
	}
	shp := cryptoutil.HashPassword(password, email)
	a := &Account{
		Email:     email,
		UserIN:    m.nextIN,
		SHP:       shp,
		SHPSealer: shp.Sealer(),
	}
	m.nextIN++
	m.byEmail[email] = a
	return snapshot(a), nil
}

// Subscribe adds a subscription period to the account.
func (m *Manager) Subscribe(email, pkg string, start, end time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byEmail[email]
	if !ok {
		return ErrNoAccount
	}
	a.Subscriptions = append(a.Subscriptions, Subscription{Package: pkg, Start: start, End: end})
	return nil
}

// CancelSubscription removes all subscriptions to pkg.
func (m *Manager) CancelSubscription(email, pkg string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byEmail[email]
	if !ok {
		return ErrNoAccount
	}
	kept := a.Subscriptions[:0]
	for _, s := range a.Subscriptions {
		if s.Package != pkg {
			kept = append(kept, s)
		}
	}
	a.Subscriptions = kept
	return nil
}

// SetDomain assigns the user to an Authentication Domain (§V).
func (m *Manager) SetDomain(email, domain string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byEmail[email]
	if !ok {
		return ErrNoAccount
	}
	a.Domain = domain
	return nil
}

// SetDisabled enables or disables the account.
func (m *Manager) SetDisabled(email string, disabled bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byEmail[email]
	if !ok {
		return ErrNoAccount
	}
	a.Disabled = disabled
	return nil
}

// ChangePassword replaces the account password.
func (m *Manager) ChangePassword(email, password string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byEmail[email]
	if !ok {
		return ErrNoAccount
	}
	a.SHP = cryptoutil.HashPassword(password, email)
	a.SHPSealer = a.SHP.Sealer()
	return nil
}

// Lookup returns the account snapshot for the User Manager.
func (m *Manager) Lookup(email string) (Account, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byEmail[email]
	if !ok {
		return Account{}, ErrNoAccount
	}
	if a.Disabled {
		return Account{}, ErrDisabled
	}
	return snapshot(a), nil
}

// Count returns the number of registered accounts.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byEmail)
}

func snapshot(a *Account) Account {
	out := *a
	out.Subscriptions = append([]Subscription(nil), a.Subscriptions...)
	return out
}

// String describes the manager for logs.
func (m *Manager) String() string {
	return fmt.Sprintf("AccountManager{%d accounts}", m.Count())
}
