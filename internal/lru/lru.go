// Package lru provides a small, mutex-guarded, fixed-capacity LRU cache
// shared by the hot-path caching layers (verified-ticket cache, parsed-key
// caches). It is deliberately minimal: Get/Add/Len and nothing else, with
// strict bounds so a cache can never grow past its capacity no matter the
// workload.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New creates a cache holding at most capacity entries (capacity < 1 is
// treated as 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *Cache[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap reports the cache capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }
