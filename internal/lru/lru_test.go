package lru

import "testing"

func TestGetAdd(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // a is now most recently used
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 9) // refresh value + recency, no growth
	c.Add("c", 3) // evicts b
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("a = %d, want 9", v)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", c.Cap())
	}
	c.Add(1, 1)
	c.Add(2, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestNeverExceedsCap(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 1000; i++ {
		c.Add(i, i)
		if c.Len() > 8 {
			t.Fatalf("Len = %d exceeds cap after %d adds", c.Len(), i+1)
		}
	}
}
